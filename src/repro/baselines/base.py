"""Shared plumbing for the comparison systems.

Every baseline implements the same Fig. 3 engine protocol as
:class:`repro.core.Gamma`, so the algorithm drivers in
:mod:`repro.algorithms` run unmodified on all of them.  Two families:

* :class:`InCoreEngine` — GPU systems that keep the graph *and* all
  intermediate results in device memory (Pangolin-GPU, GSI).  They are fast
  on small inputs and raise :class:`~repro.errors.DeviceOutOfMemory` on
  large ones — the crashes the paper's Figs. 11/12/14 report.
* :class:`CpuEngine` — host-only systems (Pangolin single-thread,
  Peregrine, GraphMiner).  Work is charged to CPU threads; memory is plain
  host memory.
"""

from __future__ import annotations

import numpy as np

from ..core.aggregation import aggregate_edge_table, dedup_embeddings
from ..core.embedding_table import EDGE, VERTEX, EmbeddingTable
from ..core.extension import ExtensionEngine
from ..core.filtering import filter_by_support, filter_rows
from ..core.memory_pool import WriteStrategy
from ..core.pattern_table import PatternTable
from ..core.residence import HostResidence, InCoreResidence
from ..errors import ExecutionError
from ..graph.canonical import QuickPatternEncoder
from ..graph.csr import CSRGraph
from ..gpusim.platform import GpuPlatform, make_platform


class BaselineEngine:
    """Common engine protocol; see subclasses for system-specific wiring."""

    name = "baseline"
    #: Whether the embedding table is compacted after filtering (§V-A notes
    #: existing frameworks skip compression).
    compaction = False

    def __init__(self, graph: CSRGraph, platform: GpuPlatform) -> None:
        self.graph = graph
        self.platform = platform
        self.encoder = QuickPatternEncoder()
        self._tables: list[EmbeddingTable] = []
        self._closed = False

    # -- protocol: tables -----------------------------------------------------
    def _make_table(self, kind: str, name: str) -> EmbeddingTable:
        raise NotImplementedError

    def new_vertex_table(self, name: str = "v-ET") -> EmbeddingTable:
        table = self._make_table(VERTEX, name)
        table.owner = self  # lets the Fig. 3 free functions find the engine
        self._tables.append(table)
        return table

    def new_edge_table(self, name: str = "e-ET") -> EmbeddingTable:
        table = self._make_table(EDGE, name)
        table.owner = self
        self._tables.append(table)
        return table

    # -- protocol: primitives ----------------------------------------------------
    def seed_vertices(self, table, label=None):
        return self._engine.seed_vertices(table, label)

    def seed_edges(self, table):
        return self._engine.seed_edges(table)

    def vertex_extension(self, table, anchor_cols, label=None,
                         greater_than_col=None, greater_than_cols=(),
                         less_than_cols=(), injective=True):
        return self._engine.extend_vertices(
            table, anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols,
            injective=injective,
        )

    def vertex_extension_any(self, table, anchor_cols, label=None,
                             greater_than_col=None, greater_than_cols=(),
                             less_than_cols=(), injective=True):
        return self._engine.extend_vertices_any(
            table, anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols,
            injective=injective,
        )

    def edge_extension(self, table):
        return self._engine.extend_edges(table)

    def filtering(self, table, keep_mask=None, pattern_table=None,
                  row_codes=None, constraint=None):
        if keep_mask is not None:
            return filter_rows(table, keep_mask, compact=self.compaction)
        if pattern_table is None or row_codes is None or constraint is None:
            raise ExecutionError(
                "support filtering needs pattern_table, row_codes and constraint"
            )
        return filter_by_support(
            self.platform, table, row_codes, pattern_table, constraint,
            compact=self.compaction, cpu=self._is_cpu,
        )

    def dedup(self, table):
        return dedup_embeddings(self.platform, table, cpu=self._is_cpu)

    def aggregation(self, table, pattern_table: PatternTable,
                    support_metric: str = "instances") -> np.ndarray:
        raise NotImplementedError

    def output_results(self, table=None, pattern_table=None):
        outputs = []
        if table is not None:
            outputs.append(table.materialize())
        if pattern_table is not None:
            outputs.append(pattern_table.as_dict())
        if not outputs:
            raise ExecutionError("nothing to output")
        return outputs[0] if len(outputs) == 1 else tuple(outputs)

    # -- bookkeeping ----------------------------------------------------------------
    _is_cpu = False

    @property
    def simulated_seconds(self) -> float:
        return self.platform.simulated_seconds

    @property
    def peak_device_bytes(self) -> int:
        return self.platform.device.peak

    @property
    def peak_host_bytes(self) -> int:
        return self.platform.host_peak

    @property
    def peak_memory_bytes(self) -> int:
        return self.peak_device_bytes + self.peak_host_bytes

    def close(self) -> None:
        if self._closed:
            return
        for table in self._tables:
            table.release()
        self._residence.release()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class InCoreEngine(BaselineEngine):
    """GPU baseline: graph + embedding tables + pattern sorts all in device
    memory."""

    #: Subclasses provide the write-conflict strategy.
    def _make_strategy(self) -> WriteStrategy:
        raise NotImplementedError

    #: Whether the engine groups embeddings to avoid redundant intersection
    #: (GAMMA's Optimization 2; in-core baselines lack it).
    pre_merge = False

    def __init__(
        self,
        graph: CSRGraph,
        platform: GpuPlatform | None = None,
        num_warps: int | None = None,
        device_memory_bytes: int | None = None,
    ) -> None:
        if platform is None:
            platform = make_platform(
                num_warps=num_warps, device_memory_bytes=device_memory_bytes
            )
        super().__init__(graph, platform)
        self._residence = InCoreResidence(platform, graph)
        self._engine = ExtensionEngine(
            platform, self._residence, self._make_strategy(),
            pre_merge=self.pre_merge, planner=None,
        )

    def _make_table(self, kind: str, name: str) -> EmbeddingTable:
        return EmbeddingTable(
            self.platform, kind, f"{self.name}:{name}", device_resident=True
        )

    def aggregation(self, table, pattern_table: PatternTable,
                    support_metric: str = "instances") -> np.ndarray:
        """In-core aggregation: the canonical codes must fit (twice — sort
        double buffer) in device memory; big pattern tables are the second
        crash mode of in-core systems."""
        from ..core.aggregation import mni_supports

        mats = table.materialize()
        n, k = (mats.shape if mats.size else (0, max(1, table.depth)))
        if n == 0:
            return np.empty(0, dtype=np.int64)
        src, dst = self._residence.endpoints_of(mats.ravel())
        want_mni = support_metric == "mni"
        encoded = self.encoder.encode_edge_embeddings(
            src.reshape(n, k), dst.reshape(n, k),
            self.graph.labels,  # gammalint: allow[charge] -- label gathers billed in the encode step's charged ops
            return_positions=want_mni,
        )
        codes, positions = encoded if want_mni else (encoded, None)
        scratch = self.platform.device.allocate(
            2 * codes.nbytes, f"{self.name}:PT-sort"
        )
        log_n = float(np.log2(max(2, n)))
        self.platform.kernel.launch(
            "aggregate:in-core-sort",
            element_ops=n * (24 + log_n),
            device_bytes=2 * codes.nbytes,
        )
        if want_mni:
            self.platform.kernel.launch(
                "aggregate:mni", element_ops=positions.shape[1] * n
            )
            uniq, counts = mni_supports(codes, positions)
        else:
            uniq, counts = np.unique(codes, return_counts=True)
        self.platform.device.free(scratch)
        pattern_table.merge(uniq, counts)
        return codes


class CpuEngine(BaselineEngine):
    """CPU baseline: plain host memory, work charged to CPU threads."""

    threads = 1
    #: Per-op cost multiplier modelling the system's algorithmic quality
    #: (pattern-aware plans touch fewer candidates per logical op).
    op_factor = 1.0
    pre_merge = False

    def __init__(
        self, graph: CSRGraph, platform: GpuPlatform | None = None
    ) -> None:
        if platform is None:
            platform = make_platform(cpu_threads=self.threads)
        else:
            platform.cpu.threads = self.threads
        super().__init__(graph, platform)
        self._residence = HostResidence(platform, graph)
        self._engine = ExtensionEngine(
            platform, self._residence, None,
            pre_merge=self.pre_merge, planner=None,
            cpu=True, cpu_op_factor=self.op_factor,
        )

    _is_cpu = True

    def _make_table(self, kind: str, name: str) -> EmbeddingTable:
        return EmbeddingTable(
            self.platform, kind, f"{self.name}:{name}", charged=False
        )

    def aggregation(self, table, pattern_table: PatternTable,
                    support_metric: str = "instances") -> np.ndarray:
        return aggregate_edge_table(
            self.platform, self._residence, table, self.encoder, pattern_table,
            cpu=True, support_metric=support_metric,
        )
