"""Comparison systems (paper §VI-A "Comparative evaluation").

All baselines speak the same engine protocol as :class:`repro.core.Gamma`,
so every algorithm driver runs unchanged on every system.  The algorithmic
differences (two-pass vs dynamic allocation, prealloc vs pool, in-core vs
out-of-core, CPU vs GPU) are implemented, not faked: in-core engines really
allocate from the capacity-limited device allocator (and crash), two-pass
engines really charge the second traversal, CPU engines really bill their
thread pool.
"""

from .base import BaselineEngine, CpuEngine, InCoreEngine
from .graphminer import GraphMiner
from .gsi import GSI
from .pangolin import PangolinGPU, PangolinST
from .peregrine import Peregrine
from .sort_baselines import cpu_sort, naive_multi_merge_sort, xtr2sort

__all__ = [
    "BaselineEngine",
    "CpuEngine",
    "InCoreEngine",
    "GraphMiner",
    "GSI",
    "PangolinGPU",
    "PangolinST",
    "Peregrine",
    "cpu_sort",
    "naive_multi_merge_sort",
    "xtr2sort",
]
