"""Sorting comparators for Fig. 19 and Table III.

The implementations live in :mod:`repro.core.sort` next to GAMMA's
multi-merge (they share the segment machinery); this module gives them
their benchmark-facing names.

* :func:`naive_multi_merge_sort` — Algorithm 3 without the prefix-sum
  trick: both search directions of every list pair run.
* :func:`xtr2sort` — the radix-partitioning out-of-core sort of the
  [29]/[30] style systems: extra full passes over the data and a host-side
  scatter.
* :func:`cpu_sort` — a single-threaded host comparison sort (Table III).
"""

from __future__ import annotations

import numpy as np

from ..core.sort import CPU_SORT, NAIVE_MERGE, XTR2SORT, out_of_core_sort
from ..gpusim.platform import GpuPlatform


def naive_multi_merge_sort(
    platform: GpuPlatform,
    keys: np.ndarray,
    segment_len: int | None = None,
    p_size: int | None = None,
) -> np.ndarray:
    kwargs = {} if p_size is None else {"p_size": p_size}
    return out_of_core_sort(
        platform, keys, method=NAIVE_MERGE, segment_len=segment_len, **kwargs
    )


def xtr2sort(
    platform: GpuPlatform,
    keys: np.ndarray,
    segment_len: int | None = None,
) -> np.ndarray:
    return out_of_core_sort(platform, keys, method=XTR2SORT, segment_len=segment_len)


def cpu_sort(platform: GpuPlatform, keys: np.ndarray) -> np.ndarray:
    return out_of_core_sort(platform, keys, method=CPU_SORT)
