"""GSI baseline (paper ref [10]).

GSI is a state-of-the-art *task-specific* subgraph matching system on GPU.
The traits the paper calls out, all modelled:

* **prealloc-combine** — instead of Pangolin's joining-twice, GSI
  estimates each row's maximum result count and preallocates worst-case
  space; extension then runs once.  "The overestimation often causes
  significant space waste" (§V-B) — on large graphs the preallocation
  itself exceeds device memory, which is how GSI crashes in Fig. 11.
* **in-core** — graph and tables in device memory.
* **GPU-friendly joins** — GSI's PCSR layout speeds the join phase; since
  extension already runs single-pass here, no extra factor is applied.
* compaction after filtering (GSI does compact candidate sets).
"""

from __future__ import annotations

from ..core.memory_pool import PreallocStrategy, WriteStrategy
from .base import InCoreEngine


class GSI(InCoreEngine):
    """In-core GPU subgraph matcher with worst-case preallocation."""

    name = "gsi"
    compaction = True
    pre_merge = False

    def _make_strategy(self) -> WriteStrategy:
        return PreallocStrategy(self.platform, tag="gsi:prealloc")

    def vertex_extension(self, table, anchor_cols, label=None,
                         greater_than_col=None, greater_than_cols=(),
                         less_than_cols=(), injective=True):
        stats = super().vertex_extension(
            table, anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols,
            injective=injective,
        )
        # GSI's join phase probes its PCSR vertex-signature tables for
        # every candidate (encoding + hash probes) — the per-candidate
        # bookkeeping newer systems avoid.
        if stats.candidates:
            self.platform.kernel.launch(
                "gsi:signature-probe",
                element_ops=2 * stats.candidates,
                device_bytes=32 * stats.candidates,
            )
        return stats
