"""Peregrine baseline (paper ref [16]).

Peregrine is the state-of-the-art multi-core CPU GPM framework and the
paper's CPU comparison point ("superior to other GPM systems, including
Arabesque, Rstream and Gminer").  Its pattern-based exploration plans avoid
materializing non-matching candidates, modelled as a per-op cost factor
below 1; it runs on all cores of the paper's 32-core testbed.

As a CPU DFS-style system its memory footprint stays small — which is why
Peregrine never crashes in the paper's figures; it just falls behind on
time as graphs grow.
"""

from __future__ import annotations

from .base import CpuEngine


class Peregrine(CpuEngine):
    """Pattern-aware multi-threaded CPU engine."""

    name = "peregrine"
    compaction = True
    #: Pattern-based plans share common prefixes like GAMMA's pre-merge.
    pre_merge = True
    threads = 32
    #: Exploration-plan quality: fewer touched candidates per logical op.
    op_factor = 0.7
