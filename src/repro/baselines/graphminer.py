"""GraphMiner baseline (paper ref [35]).

GraphMiner is a multi-core CPU graph-mining library combining several
state-of-the-art GPM designs; the paper uses its *specialized FPM
implementation* as the strongest CPU comparison for Fig. 14 ("GAMMA still
has slightly better performance, achieving 24.7% performance
improvements").  Modelled as a multi-threaded CPU engine with a better
per-op factor than the generic frameworks.
"""

from __future__ import annotations

from .base import CpuEngine


class GraphMiner(CpuEngine):
    """Specialized multi-threaded CPU FPM engine."""

    name = "graphminer"
    compaction = True
    pre_merge = True
    threads = 32
    #: Hand-specialized kernels: the best per-op constant among the CPU
    #: systems (but still bound by CPU throughput).
    op_factor = 0.45
