"""Fig. 14 — FPM: GAMMA vs GraphMiner/Peregrine/Pangolin."""

from repro.bench.figures import fig14_fpm


def bench_fig14(figure_bench):
    figure_bench("fig14", fig14_fpm)
