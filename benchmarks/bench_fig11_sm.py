"""Fig. 11 — subgraph matching: GAMMA vs GSI vs Peregrine, queries q1-q3."""

from repro.bench.figures import fig11_sm


def bench_fig11(figure_bench):
    figure_bench("fig11", fig11_sm)
