"""Fig. 16 — speedup over Pangolin-ST as the warp count grows."""

from repro.bench.figures import fig16_warps


def bench_fig16(figure_bench):
    figure_bench("fig16", fig16_warps)
