#!/usr/bin/env python
"""Wall-clock hot-path benchmark: batched (fast) pipeline vs. reference.

Times SM(q1), 4-clique, and FPM end-to-end on GAMMA under both hot-path
pipelines (see :mod:`repro.perf`), verifies the simulated results are
bit-for-bit identical, and writes ``BENCH_hotpath.json`` at the repo root —
the perf trajectory that ``tools/perf_report.py`` renders and diffs.  The
previous run's figures (if any) are diffed inline.

Usage:
    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke

This is a standalone script, not a pytest-benchmark module: it exists to
compare the two wall-clock pipelines *within* one process, which the figure
benchmarks (one pipeline, simulated-time focused) cannot do.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs, perf  # noqa: E402
from repro.bench.runner import SYSTEMS  # noqa: E402
from repro.bench.workloads import (  # noqa: E402
    fpm_support,
    fpm_task,
    kcl_task,
    sm_task,
)
from repro.graph import datasets  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"
REPORTS_DIR = REPO_ROOT / "benchmarks" / "reports"
DEFAULT_HISTORY = REPORTS_DIR / "history"


def _workloads(quick: bool):
    """(name, system, dataset, task-factory) grid; quick mode shrinks the
    datasets so a CI smoke run finishes in seconds."""
    sm_ds = "CL" if quick else "CL*8"
    fpm_ds = "EA" if quick else "CL"
    return [
        ("SM(q1)", "GAMMA", sm_ds, lambda g: sm_task(1)),
        ("4-clique", "GAMMA", "CL", lambda g: kcl_task(4)),
        ("FPM", "GAMMA", fpm_ds,
         lambda g: fpm_task(fpm_support(g.num_edges))),
    ]


def _run_cell(system: str, dataset: str, task):
    """One timed end-to-end run; returns (wall_seconds, simulated, counters)."""
    graph = datasets.load(dataset)
    start = time.perf_counter()
    engine = SYSTEMS[system](graph)
    try:
        task.run(engine)
        wall = time.perf_counter() - start
        return wall, engine.simulated_seconds, engine.platform.counters.snapshot()
    finally:
        engine.close()


def _collected_run(system, dataset, task):
    """One extra run with a span collector attached; returns the manifest,
    the number of spans the run produced, and the flat span-tree records
    (the shape the perf-history store and critical-path report consume)."""
    collector = obs.install(obs.SpanCollector())
    graph = datasets.load(dataset)
    start = time.perf_counter()
    engine = SYSTEMS[system](graph)
    try:
        task.run(engine)
        wall = time.perf_counter() - start
        collector.finish()
        manifest = obs.build_manifest(
            engine.platform, collector,
            system=system, dataset=dataset, task=task.name,
            config=getattr(engine, "config", None), wall_seconds=wall,
        )
        return manifest, len(collector.spans), obs.span_tree_records(collector)
    finally:
        collector.finish()
        engine.close()


#: Null-telemetry budget: the instrumented hot paths may cost at most this
#: fraction of a workload's wall time when no collector is attached.
NULL_OVERHEAD_BUDGET = 0.02


def _null_span_cost(iters: int = 200_000) -> float:
    """Per-span wall cost of the no-sink fast path (enter + exit)."""
    from repro.obs.spans import NULL_TELEMETRY

    span = NULL_TELEMETRY.span  # the attribute lookup engines pay
    start = time.perf_counter()
    for __ in range(iters):
        with span("bench:null"):
            pass
    return (time.perf_counter() - start) / iters


def _null_resilience_cost(iters: int = 200_000) -> float:
    """Per-hook wall cost of the fault-injection fast path with no plan.

    Every telemetry span in the hot paths is paired with one resilience
    ``phase()`` bracket (plus ``active``-guarded ``io()`` checks that cost
    a single attribute read), so the per-span null cost is the right unit
    to bound against the same budget.
    """
    from repro.resilience.faults import NULL_RESILIENCE

    phase = NULL_RESILIENCE.phase  # the attribute lookup engines pay
    start = time.perf_counter()
    for level in range(iters):
        with phase(f"level:{level}"):  # f-string arg, as the hot path pays
            pass
        if NULL_RESILIENCE.active:  # the guard the io() sites pay
            pass
    return (time.perf_counter() - start) / iters


def _measure(name, system, dataset, task_factory, repeats, null_cost):
    graph = datasets.load(dataset)
    task = task_factory(graph)
    with perf.pipeline(perf.FAST):
        _run_cell(system, dataset, task)  # warm caches (incl. bitset build)
        fast_runs = [_run_cell(system, dataset, task) for __ in range(repeats)]
        manifest, span_count, span_records = _collected_run(
            system, dataset, task)
    with perf.pipeline(perf.REFERENCE):
        ref_runs = [_run_cell(system, dataset, task) for __ in range(repeats)]
    fast_wall = min(r[0] for r in fast_runs)
    ref_wall = min(r[0] for r in ref_runs)
    simulated = {r[1] for r in fast_runs} | {r[1] for r in ref_runs}
    counters = [r[2] for r in fast_runs + ref_runs]
    identical = len(simulated) == 1 and all(c == counters[0] for c in counters)
    # Every span an instrumented run records is a null telemetry enter/exit
    # plus a null resilience phase bracket in the uninstrumented runs above
    # — bound that combined cost against the budget.
    overhead = (span_count * null_cost / fast_wall) if fast_wall else 0.0
    return {
        "workload": name,
        "system": system,
        "dataset": dataset,
        "task": task.name,
        "fast_seconds": fast_wall,
        "reference_seconds": ref_wall,
        "speedup": (ref_wall / fast_wall) if fast_wall else float("inf"),
        "simulated_seconds": fast_runs[0][1],
        "results_identical": identical,
        "telemetry": {
            "span_count": span_count,
            "null_overhead_fraction": overhead,
            "within_budget": overhead <= NULL_OVERHEAD_BUDGET,
        },
        "manifest": manifest,
        # Consumed by the history append + critical-path artifact in
        # main(); popped before the report is serialised (the manifest
        # already summarises the spans, the raw records would bloat it).
        "_span_records": span_records,
    }


def _render(rows):
    head = (f"{'workload':10s} {'dataset':8s} {'fast':>9s} {'reference':>10s}"
            f" {'speedup':>8s}  {'spans':>5s} {'null-ovh':>8s}  identical")
    lines = [head, "-" * len(head)]
    for r in rows:
        tel = r["telemetry"]
        lines.append(
            f"{r['workload']:10s} {r['dataset']:8s}"
            f" {r['fast_seconds'] * 1e3:8.1f}ms"
            f" {r['reference_seconds'] * 1e3:9.1f}ms"
            f" {r['speedup']:7.2f}x"
            f" {tel['span_count']:5d} {tel['null_overhead_fraction']:7.3%} "
            f" {r['results_identical']}"
        )
    return "\n".join(lines)


def _diff_against_previous(rows, previous):
    by_name = {r["workload"]: r for r in previous.get("workloads", [])}
    lines = []
    for r in rows:
        old = by_name.get(r["workload"])
        if old is None or not old.get("fast_seconds"):
            continue
        delta = (r["fast_seconds"] - old["fast_seconds"]) / old["fast_seconds"]
        lines.append(
            f"{r['workload']:10s} fast {old['fast_seconds'] * 1e3:8.1f}ms"
            f" -> {r['fast_seconds'] * 1e3:8.1f}ms  ({delta:+.1%})"
        )
    return "\n".join(lines) if lines else "(no comparable previous run)"


def _record_history(rows, history_dir) -> None:
    """Append each workload's fast/reference arms to the perf-history
    store and write the critical-path artifact; pops the private
    ``_span_records`` key either way so the JSON report stays lean."""
    from repro.obs.profile import HistoryStore, render_critical_path

    sections = []
    records_by_row = [(row, row.pop("_span_records", None)) for row in rows]
    for row, records in records_by_row:
        if records:
            sections.append(f"== {row['workload']} ({row['dataset']}) ==\n"
                            + render_critical_path(records))
    if sections:
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / "critical_path_hotpath.txt").write_text(
            "\n\n".join(sections) + "\n")
        print(f"critical-path report -> "
              f"{REPORTS_DIR / 'critical_path_hotpath.txt'}")
    if not history_dir:
        return
    with HistoryStore(history_dir) as store:
        for row, records in records_by_row:
            manifest = row.get("manifest") or {}
            store.append(
                bench="hotpath", workload=row["workload"], arm="fast",
                wall_seconds=row["fast_seconds"],
                simulated_seconds=row["simulated_seconds"],
                clock_buckets=manifest.get("clock_buckets"),
                counters=manifest.get("counters"),
                span_tree=records,
            )
            # The reference pipeline simulates identically (the bench
            # asserts it); only its wall time is its own.
            store.append(
                bench="hotpath", workload=row["workload"], arm="reference",
                wall_seconds=row["reference_seconds"],
                simulated_seconds=row["simulated_seconds"],
            )
    print(f"perf history: appended {2 * len(rows)} record(s) "
          f"to {history_dir}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small datasets / 1 repeat (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per pipeline (min is reported)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--history-dir", default=str(DEFAULT_HISTORY),
                        help="perf-history store directory (empty string "
                             "disables the append)")
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else max(1, args.repeats)

    previous = None
    if args.output.exists():
        try:
            previous = json.loads(args.output.read_text())
        except (OSError, ValueError):
            previous = None

    null_span = _null_span_cost()
    null_res = _null_resilience_cost()
    null_cost = null_span + null_res
    print(f"null-telemetry span cost: {null_span * 1e9:.0f} ns/span, "
          f"null-resilience hook cost: {null_res * 1e9:.0f} ns/hook")

    rows = []
    for name, system, dataset, factory in _workloads(args.quick):
        print(f"measuring {name} on {dataset} "
              f"({repeats} repeat(s) per pipeline)...", flush=True)
        rows.append(_measure(name, system, dataset, factory, repeats,
                             null_cost))
        datasets.clear_cache()

    print()
    print(_render(rows))
    if previous is not None:
        print("\nvs previous run:")
        print(_diff_against_previous(rows, previous))

    _record_history(rows, args.history_dir)

    report = {
        "schema": 2,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "repeats": repeats,
        "null_span_cost_seconds": null_span,
        "null_resilience_cost_seconds": null_res,
        "workloads": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    bad = [r["workload"] for r in rows if not r["results_identical"]]
    if bad:
        print(f"ERROR: simulated results diverged between pipelines: {bad}",
              file=sys.stderr)
        return 1
    heavy = [r["workload"] for r in rows
             if not r["telemetry"]["within_budget"]]
    if heavy:
        worst = max(r["telemetry"]["null_overhead_fraction"] for r in rows)
        print(f"ERROR: null-telemetry overhead exceeds "
              f"{NULL_OVERHEAD_BUDGET:.0%} of wall time on {heavy} "
              f"(worst {worst:.2%})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
