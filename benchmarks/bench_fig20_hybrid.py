"""Fig. 20 — hybrid host-memory access vs unified-only / zero-copy-only."""

from repro.bench.figures import fig20_hybrid


def bench_fig20(figure_bench):
    figure_bench("fig20", fig20_hybrid)
