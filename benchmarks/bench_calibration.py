"""Cost-model sensitivity: the paper's orderings must survive 4x swings of
every calibrated constant (methodology check; docs/COSTMODEL.md)."""

from repro.bench.calibration import sensitivity_analysis


def bench_sensitivity(figure_bench):
    figure_bench("calibration", sensitivity_analysis)
