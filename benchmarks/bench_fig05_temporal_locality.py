"""Fig. 5 — temporal locality: hot-page overlap between extensions."""

from repro.bench.figures import fig05_temporal_locality


def bench_fig05(figure_bench):
    figure_bench("fig05", fig05_temporal_locality)
