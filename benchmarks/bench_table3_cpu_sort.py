"""Table III — CPU sorting vs GPU-based external sorts."""

from repro.bench.figures import table3_cpu_sort


def bench_table3(figure_bench):
    figure_bench("table3", table3_cpu_sort)
