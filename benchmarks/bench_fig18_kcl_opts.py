"""Fig. 18 — effect of dynamic-alloc and pre-merge on kCL."""

from repro.bench.figures import fig18_kcl_optimizations


def bench_fig18(figure_bench):
    figure_bench("fig18", fig18_kcl_optimizations)
