"""Fig. 15 — scalability with kronecker graph density."""

from repro.bench.figures import fig15_density


def bench_fig15(figure_bench):
    figure_bench("fig15", fig15_density)
