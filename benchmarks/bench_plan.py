#!/usr/bin/env python
"""Planner benchmark: compiled auto plans vs the hand-tuned baseline.

Runs each workload twice on fresh GAMMA engines — once under the
``--plan baseline`` table, once under the cost-based ``--plan auto``
choice — verifies the mined results are bit-for-bit identical, and
records the *simulated* speedup the chosen plan delivers.  Also times the
plan cache: a cold miss (profile + search + SQLite store) and a warm hit,
gating the warm lookup against a fraction of the planned run's wall time.

Writes ``BENCH_plan.json`` at the repo root.  Gates (exit 1 on failure):

* every workload's planned simulated time <= its baseline time;
* at least 2 of the {SM(q4-q6), FPM, motif} families reach >= 1.3x
  (full mode only — the quick grid is too small to clear the bar);
* the warm plan-cache lookup costs < 5% of the planned run's wall time;
* planned and baseline results identical everywhere.

Usage:
    PYTHONPATH=src python benchmarks/bench_plan.py            # full
    PYTHONPATH=src python benchmarks/bench_plan.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.algorithms import (  # noqa: E402
    frequent_pattern_mining,
    match_pattern,
    motif_count,
)
from repro.core import Gamma  # noqa: E402
from repro.graph import datasets, sm_query  # noqa: E402
from repro.plan import (  # noqa: E402
    PlanCache,
    profile_dataset,
    resolve_plan,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_plan.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "reports" / "history"

#: Simulated-speedup bar and how many workload families must clear it.
SPEEDUP_TARGET = 1.3
FAMILIES_REQUIRED = 2

#: Warm cache lookups may cost at most this fraction of a planned run.
WARM_LOOKUP_BUDGET = 0.05


def _workloads(quick: bool):
    """(name, family, dataset, spec) grid; quick mode shrinks datasets."""
    sm_ds = "CL" if quick else "CL*8"
    edge_ds = "EA" if quick else "CP"
    return [
        ("SM(q4)", "SM", sm_ds, {"task": "sm", "query": 4}),
        ("SM(q5)", "SM", sm_ds, {"task": "sm", "query": 5}),
        ("SM(q6)", "SM", sm_ds, {"task": "sm", "query": 6}),
        ("FPM", "FPM", edge_ds,
         {"task": "fpm", "iterations": 2, "min_support": 1}),
        ("motif", "motif", edge_ds, {"task": "motif", "num_edges": 2}),
    ]


def _resolve(engine, spec, plan, cache=None):
    if spec["task"] == "sm":
        return resolve_plan(engine, "sm", pattern=sm_query(spec["query"]),
                            plan=plan, cache=cache)
    if spec["task"] == "fpm":
        return resolve_plan(engine, "fpm", plan=plan, cache=cache,
                            iterations=spec["iterations"],
                            min_support=spec["min_support"])
    return resolve_plan(engine, "motif", plan=plan, cache=cache,
                        num_edges=spec["num_edges"])


def _run(graph, spec, plan):
    """One end-to-end run; returns (result-key, simulated, wall)."""
    start = time.perf_counter()
    with Gamma(graph) as engine:
        if spec["task"] == "sm":
            r = match_pattern(engine, sm_query(spec["query"]), plan=plan)
            key = (r.embeddings, r.unique_subgraphs)
        elif spec["task"] == "fpm":
            r = frequent_pattern_mining(
                engine, spec["iterations"], spec["min_support"], plan=plan)
            key = tuple(sorted(r.patterns.items()))
        else:
            r = motif_count(engine, spec["num_edges"], plan=plan)
            key = tuple(sorted(r.histogram.items()))
        return key, engine.simulated_seconds, time.perf_counter() - start


def _time_cache(graph, spec, cache_dir):
    """Cold-miss and warm-hit wall times for this workload's plan."""
    with Gamma(graph) as engine:
        with PlanCache(Path(cache_dir) / "plans.sqlite") as cache:
            start = time.perf_counter()
            cold_plan = _resolve(engine, spec, "auto", cache)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            warm_plan = _resolve(engine, spec, "auto", cache)
            warm = time.perf_counter() - start
            assert warm_plan.plan_id == cold_plan.plan_id
            assert cache.hits == 1 and cache.misses == 1
        # A second process sees only SQLite: reopen and hit again.
        with PlanCache(Path(cache_dir) / "plans.sqlite") as reopened:
            start = time.perf_counter()
            persisted = _resolve(engine, spec, "auto", reopened)
            warm_sqlite = time.perf_counter() - start
            assert persisted.plan_id == cold_plan.plan_id
            assert reopened.hits == 1
    return cold, warm, warm_sqlite


def _measure(name, family, dataset, spec, cache_dir):
    graph = datasets.load(dataset)
    with Gamma(graph) as engine:
        baseline_plan_obj = _resolve(engine, spec, "baseline")
        auto_plan = _resolve(engine, spec, "auto")
    base_key, base_sim, __ = _run(graph, spec, baseline_plan_obj)
    auto_key, auto_sim, auto_wall = _run(graph, spec, auto_plan)
    cold, warm, warm_sqlite = _time_cache(graph, spec, cache_dir)
    warm_fraction = (warm / auto_wall) if auto_wall else 0.0
    return {
        "workload": name,
        "family": family,
        "dataset": dataset,
        "plan_id": auto_plan.plan_id,
        "plan_source": auto_plan.source,
        "predicted_seconds": auto_plan.predicted_seconds,
        "baseline_simulated_seconds": base_sim,
        "planned_simulated_seconds": auto_sim,
        "simulated_speedup": (base_sim / auto_sim) if auto_sim else 1.0,
        "results_identical": auto_key == base_key,
        "planned_not_worse": auto_sim <= base_sim * (1.0 + 1e-9),
        "cache": {
            "cold_miss_seconds": cold,
            "warm_hit_seconds": warm,
            "warm_sqlite_hit_seconds": warm_sqlite,
            "warm_fraction_of_run": warm_fraction,
            "within_budget": warm_fraction < WARM_LOOKUP_BUDGET,
        },
    }


def _render(rows):
    head = (f"{'workload':9s} {'dataset':8s} {'baseline':>10s} "
            f"{'planned':>10s} {'speedup':>8s} {'source':>8s} "
            f"{'warm-hit':>9s}  identical")
    lines = [head, "-" * len(head)]
    for r in rows:
        lines.append(
            f"{r['workload']:9s} {r['dataset']:8s}"
            f" {r['baseline_simulated_seconds'] * 1e3:8.3f}ms"
            f" {r['planned_simulated_seconds'] * 1e3:8.3f}ms"
            f" {r['simulated_speedup']:7.2f}x"
            f" {r['plan_source']:>8s}"
            f" {r['cache']['warm_hit_seconds'] * 1e6:7.0f}us "
            f" {r['results_identical']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small datasets (CI smoke)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"report path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--history-dir", default=str(DEFAULT_HISTORY),
                        help="perf-history store directory (empty string "
                             "disables the append)")
    args = parser.parse_args(argv)

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-plan-cache-") as tmp:
        for name, family, dataset, spec in _workloads(args.quick):
            print(f"measuring {name} on {dataset}...", flush=True)
            cell_dir = Path(tmp) / name.replace("(", "_").replace(")", "")
            rows.append(_measure(name, family, dataset, spec, cell_dir))
            datasets.clear_cache()

    print()
    print(_render(rows))

    if args.history_dir:
        from repro.obs.profile import HistoryStore

        with HistoryStore(args.history_dir) as store:
            for r in rows:
                store.append(
                    bench="plan", workload=r["workload"], arm="auto",
                    simulated_seconds=r["planned_simulated_seconds"],
                    extra={"plan_id": r["plan_id"],
                           "plan_source": r["plan_source"]})
                store.append(
                    bench="plan", workload=r["workload"], arm="baseline",
                    simulated_seconds=r["baseline_simulated_seconds"])
        print(f"perf history: appended {2 * len(rows)} record(s) "
              f"to {args.history_dir}")

    families_hit = sorted({
        r["family"] for r in rows
        if r["simulated_speedup"] >= SPEEDUP_TARGET})
    report = {
        "schema": 1,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "speedup_target": SPEEDUP_TARGET,
        "families_at_target": families_hit,
        "workloads": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failures = []
    bad = [r["workload"] for r in rows if not r["results_identical"]]
    if bad:
        failures.append(f"planned results diverged from baseline: {bad}")
    worse = [r["workload"] for r in rows if not r["planned_not_worse"]]
    if worse:
        failures.append(f"planner chose a slower plan on: {worse}")
    # The speedup bar only applies to full-size datasets: the quick grid
    # is so small that kernel-launch overhead hides the dedup savings.
    if not args.quick and len(families_hit) < FAMILIES_REQUIRED:
        failures.append(
            f"only {families_hit} reached {SPEEDUP_TARGET}x "
            f"(need {FAMILIES_REQUIRED} families)")
    slow_cache = [r["workload"] for r in rows
                  if not r["cache"]["within_budget"]]
    if slow_cache:
        failures.append(
            f"warm plan-cache lookup over {WARM_LOOKUP_BUDGET:.0%} "
            f"of run time on: {slow_cache}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
