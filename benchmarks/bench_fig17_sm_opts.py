"""Fig. 17 — effect of dynamic-alloc and pre-merge on SM."""

from repro.bench.figures import fig17_sm_optimizations


def bench_fig17(figure_bench):
    figure_bench("fig17", fig17_sm_optimizations)
