"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one of the paper's tables/figures via
:mod:`repro.bench.figures`, times the regeneration with pytest-benchmark
(one round — the simulated results are deterministic), prints the
paper-style table, and archives it under ``benchmarks/reports/`` so
EXPERIMENTS.md can be cross-checked against fresh runs.
"""

from pathlib import Path

import pytest

from repro.graph import datasets
from repro.obs.profile import HistoryStore

REPORTS_DIR = Path(__file__).parent / "reports"
HISTORY_DIR = REPORTS_DIR / "history"


@pytest.fixture
def figure_bench(benchmark):
    """Run one figure driver under pytest-benchmark and archive the report."""

    def _run(key, fn, *args, **kwargs):
        report = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / f"{key}.txt").write_text(report.render() + "\n")
        print()
        print(report.render())
        # Every figure must reproduce its paper shapes.
        failed = [c for c in report.checks if c.startswith("[DIVERGES")]
        assert not failed, f"shape checks diverged: {failed}"
        # One perf-history record per regeneration, so `repro perf-report`
        # sees the figure trajectory too (wall only; the figure drivers
        # summarise their own simulated results).
        try:
            wall = benchmark.stats.stats.mean
        except AttributeError:  # pytest-benchmark internals shifted
            wall = None
        with HistoryStore(HISTORY_DIR) as store:
            store.append(bench="figure", workload=key, wall_seconds=wall)
        return report

    yield _run
    # Stand-ins are memoized per-module; drop them to bound peak RSS across
    # the whole benchmark session.
    datasets.clear_cache()
