"""Fig. 19 — multi-merge sorting vs naive and xtr2sort (64-bit keys)."""

from repro.bench.figures import fig19_multimerge


def bench_fig19(figure_bench):
    figure_bench("fig19", fig19_multimerge)
