"""Design-choice ablations beyond the paper's figures (DESIGN.md §3):
memory-pool block size, embedding-table compaction, multi-merge checkpoint
spacing and page-buffer sizing."""

from repro.bench.ablations import (
    ablation_block_size,
    ablation_buffer_fraction,
    ablation_compaction,
    ablation_p_size,
)


def bench_block_size(figure_bench):
    figure_bench("ablation_block_size", ablation_block_size)


def bench_compaction(figure_bench):
    figure_bench("ablation_compaction", ablation_compaction)


def bench_p_size(figure_bench):
    figure_bench("ablation_p_size", ablation_p_size)


def bench_buffer_fraction(figure_bench):
    figure_bench("ablation_buffer_fraction", ablation_buffer_fraction)
