"""Fig. 10 — peak memory usage of the GPU systems (SM/FPM/kCL)."""

from repro.bench.figures import fig10_memory


def bench_fig10(figure_bench):
    figure_bench("fig10", fig10_memory)
