"""Extension tier: disk spilling beyond host memory (DESIGN.md extension).

FPM on the com-orkut stand-in overflows even the scaled *host* memory for
every system in Fig. 14's grid; with spilling enabled GAMMA completes it.
"""

from repro.bench.figures import FigureReport
from repro.bench.reporting import format_table, shape_check
from repro.core import DISK_IO, Gamma, GammaConfig
from repro.algorithms import frequent_pattern_mining
from repro.errors import GammaError
from repro.graph import datasets


def spill_experiment() -> FigureReport:
    graph = datasets.load("CO")
    min_support = max(2, graph.num_edges // 200)
    rows = []
    outcomes = {}
    for label, config in (
        ("GAMMA", GammaConfig()),
        ("GAMMA+spill", GammaConfig(spill_to_disk=True,
                                    spill_budget_bytes=120 << 20)),
    ):
        try:
            with Gamma(graph, config) as engine:
                result = frequent_pattern_mining(engine, 2, min_support)
                rows.append({
                    "system": label,
                    "time_ms": f"{engine.simulated_seconds * 1e3:.1f}",
                    "disk_ms": f"{engine.platform.clock.time_in(DISK_IO) * 1e3:.1f}",
                    "patterns": len(result.patterns),
                })
                outcomes[label] = "ok"
        except GammaError as exc:
            rows.append({"system": label, "time_ms": type(exc).__name__,
                         "disk_ms": "-", "patterns": "-"})
            outcomes[label] = type(exc).__name__
    checks = [
        shape_check(
            "Spill.survives",
            "(extension) a disk tier extends GAMMA beyond host memory",
            f"plain: {outcomes.get('GAMMA')}; spill: {outcomes.get('GAMMA+spill')}",
            outcomes.get("GAMMA") == "HostOutOfMemory"
            and outcomes.get("GAMMA+spill") == "ok",
        )
    ]
    return FigureReport(
        "Ext. spill", "FPM on CO: host-memory wall vs disk tier",
        format_table(rows), checks, rows=rows,
    )


def bench_spill(figure_bench):
    figure_bench("ext_spill", spill_experiment)
