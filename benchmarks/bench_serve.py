#!/usr/bin/env python
"""Serve-mode load benchmark: concurrent multi-tenant query latency.

Drives the mining service with a mixed workload (k-clique, motifs,
subgraph matching, FPM) from ``--tenants`` concurrent tenants and
reports per-query latency (p50/p99/mean) and sustained queries/sec.
Two load paths share the same workload:

* ``direct`` (always run) — tenants submit straight into a threaded
  :class:`repro.serve.Scheduler`, isolating scheduler/queue overhead;
* ``http`` (``--http``) — tenants run over a real
  :class:`repro.serve.MiningService` + :class:`repro.serve.ServeClient`
  round trip, adding the stdlib HTTP stack.

Every completed query is verified against a direct single-engine run of
the same spec — serving must never change an answer.  The acceptance
bar: with at least 4 tenants, the run must actually sustain >= 4
distinct tenants in flight at once (replayed from the queue trace).

Each arm appends one record to the perf-history store
(``bench="serve"``) so ``repro perf-report`` gates latency regressions.
Writes ``BENCH_serve.json`` at the repo root.

Usage:
    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.framework import Gamma  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.obs.profile import HistoryStore  # noqa: E402
from repro.serve import (  # noqa: E402
    MiningService,
    QuerySpec,
    Scheduler,
    ServeClient,
    ServeConfig,
    result_payload,
    run_query,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serve.json"
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "reports" / "history"

#: The acceptance bar: with >= 4 tenants the run must keep at least this
#: many distinct tenants in flight simultaneously at some point.
CONCURRENT_TENANTS_BAR = 4

#: The mixed workload each tenant cycles through.
MIX = (
    dict(family="kcl", k=4),
    dict(family="motifs", num_edges=2),
    dict(family="sm", query=1),
    dict(family="fpm", iterations=2, min_support=8),
)


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


def _latency_stats(latencies, wall_seconds):
    return {
        "queries": len(latencies),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
        "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
        "wall_seconds": round(wall_seconds, 3),
        "queries_per_sec": round(len(latencies) / wall_seconds, 2),
    }


def _workload(tenants, per_tenant):
    specs = []
    for tenant in range(tenants):
        for index in range(per_tenant):
            params = MIX[(tenant + index) % len(MIX)]
            specs.append(QuerySpec(dataset="BENCH", tenant=f"t{tenant}",
                                   **params))
    return specs


def _oracle(graph, specs):
    """Direct single-engine answers, one per distinct spec signature."""
    answers = {}
    for spec in specs:
        key = (spec.family, tuple(sorted(spec.params().items())))
        if key in answers:
            continue
        engine = Gamma(graph)
        try:
            answers[key] = result_payload(spec, run_query(engine, spec))
        finally:
            engine.close()
    return answers


def _verify(graph, specs, results, answers):
    for spec, result in zip(specs, results):
        key = (spec.family, tuple(sorted(spec.params().items())))
        expected = answers[key]
        for field, value in expected.items():
            if field == "simulated_seconds":
                continue
            got = result[field]
            assert got == value, (
                f"{spec.family} served {field}={got!r}, "
                f"batch oracle says {value!r}")


def _max_concurrent_tenants(trace):
    """Replay the queue trace: peak count of tenants in flight at once."""
    inflight = {}
    peak = 0
    for event in trace:
        if event["event"] == "acquire":
            inflight[event["tenant"]] = \
                inflight.get(event["tenant"], 0) + 1
        elif event["event"] in ("release", "requeue"):
            inflight[event["tenant"]] = \
                max(0, inflight.get(event["tenant"], 0) - 1)
        peak = max(peak, sum(1 for n in inflight.values() if n > 0))
    return peak


def run_direct(graph, specs, slots):
    scheduler = Scheduler(ServeConfig(slots=slots),
                          graphs={"BENCH": graph})
    try:
        start = time.monotonic()
        states = [scheduler.submit(spec) for spec in specs]
        scheduler.start()
        if not scheduler.wait_idle(timeout=600.0):
            raise RuntimeError("serve benchmark did not drain in 600s")
        wall = time.monotonic() - start
        scheduler.stop()
        failed = [s for s in states if s.status != "completed"]
        assert not failed, f"{len(failed)} queries failed: " \
            f"{failed[0].error}"
        latencies = [s.latency_seconds for s in states]
        stats = _latency_stats(latencies, wall)
        stats["preemptions"] = sum(s.preemptions for s in states)
        stats["max_concurrent_tenants"] = _max_concurrent_tenants(
            scheduler.queue.trace)
        return stats, [s.result for s in states]
    finally:
        scheduler.close()


def run_http(graph, specs, slots):
    scheduler = Scheduler(ServeConfig(slots=slots),
                          graphs={"BENCH": graph})
    service = MiningService(scheduler, port=0).start()
    results = {}
    errors = []

    def tenant_loop(tenant, tenant_specs):
        client = ServeClient(service.url, timeout=600.0)
        for index, spec in tenant_specs:
            try:
                doc = client.run(spec)
                assert doc["status"] == "completed", doc.get("error")
                results[index] = (doc["result"],
                                  doc["billing"]["latency_seconds"])
            except Exception as exc:  # pragma: no cover - bench guard
                errors.append((tenant, exc))
                return

    try:
        by_tenant = {}
        for index, spec in enumerate(specs):
            by_tenant.setdefault(spec.tenant, []).append((index, spec))
        start = time.monotonic()
        threads = [threading.Thread(target=tenant_loop, args=item)
                   for item in by_tenant.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - start
        assert not errors, f"http tenants failed: {errors[:1]}"
        assert len(results) == len(specs)
        latencies = [results[i][1] for i in range(len(specs))]
        stats = _latency_stats(latencies, wall)
        stats["max_concurrent_tenants"] = _max_concurrent_tenants(
            scheduler.queue.trace)
        return stats, [results[i][0] for i in range(len(specs))]
    finally:
        service.close()


def run(quick=False, tenants=4, per_tenant=None, slots=4, http=False,
        history_dir=None):
    per_tenant = per_tenant or (2 if quick else 6)
    size = (36, 120) if quick else (48, 180)
    graph = generators.erdos_renyi(size[0], size[1], seed=7, labels=3)
    specs = _workload(tenants, per_tenant)
    answers = _oracle(graph, specs)
    print(f"serve bench: {tenants} tenants x {per_tenant} queries, "
          f"{slots} slots, graph |V|={size[0]} |E|~{size[1]}")

    report = {
        "tenants": tenants,
        "per_tenant": per_tenant,
        "slots": slots,
        "graph": {"vertices": size[0], "edges": size[1]},
        "concurrent_tenants_bar": CONCURRENT_TENANTS_BAR,
        "arms": {},
    }
    history = HistoryStore(history_dir) if history_dir else None
    try:
        arms = [("direct", run_direct)] + ([("http", run_http)]
                                           if http else [])
        for arm, runner in arms:
            stats, results = runner(graph, specs, slots)
            _verify(graph, specs, results, answers)
            stats["verified"] = True
            if tenants >= CONCURRENT_TENANTS_BAR:
                assert (stats["max_concurrent_tenants"]
                        >= CONCURRENT_TENANTS_BAR), (
                    f"{arm}: only {stats['max_concurrent_tenants']} "
                    f"tenants ever ran concurrently "
                    f"(bar {CONCURRENT_TENANTS_BAR})")
            report["arms"][arm] = stats
            print(f"  {arm}: p50 {stats['p50_ms']}ms  "
                  f"p99 {stats['p99_ms']}ms  "
                  f"{stats['queries_per_sec']} q/s  "
                  f"({stats['max_concurrent_tenants']} tenants "
                  f"concurrent)")
            if history is not None:
                history.append(
                    bench="serve",
                    workload=f"mixed-{tenants}t",
                    arm=arm,
                    wall_seconds=stats["wall_seconds"],
                    counters={
                        "p50_ms": stats["p50_ms"],
                        "p99_ms": stats["p99_ms"],
                        "queries_per_sec": stats["queries_per_sec"],
                    },
                )
    finally:
        if history is not None:
            history.close()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph / fewer queries for CI")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--per-tenant", type=int, default=None)
    parser.add_argument("--slots", type=int, default=4)
    parser.add_argument("--http", action="store_true",
                        help="also drive the HTTP front end")
    parser.add_argument("--out", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--history-dir", default=str(DEFAULT_HISTORY),
                        help="perf-history store directory (empty string "
                             "disables the append)")
    args = parser.parse_args(argv)
    report = run(quick=args.quick, tenants=args.tenants,
                 per_tenant=args.per_tenant, slots=args.slots,
                 http=args.http,
                 history_dir=Path(args.history_dir)
                 if args.history_dir else None)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
