#!/usr/bin/env python
"""Multi-GPU scaling benchmark: sharded GAMMA vs one simulated GPU.

Runs 4-clique counting at 1/2/4 shards for each partitioning policy,
verifies the counts never change, reports simulated-time speedup and
per-shard utilization, and — the CI bar — asserts the 4-GPU stealing
configuration reaches at least 1.5x over single-GPU on the simulated
clock.  Writes ``BENCH_shard.json`` at the repo root.

A second section times the *wall clock* of the same 4-shard workload
under both shard executors (``serial`` vs ``process``; see
docs/SHARDING.md).  On hosts with at least 4 cores the process backend
must reach :data:`WALL_SPEEDUP_BAR` over serial; on smaller hosts the
ratio is reported but not asserted (forked workers cannot beat serial
on one core).  Either way the two backends must produce identical
clique counts and byte-identical canonical manifests.

Every cell also appends one record to the perf-history store
(``repro.obs.profile.HistoryStore``, arm ``<policy>x<gpus>``) for the
regression sentinel, and the 4-GPU stealing run's merged manifest —
straggler section included — plus a rendered straggler report land under
``benchmarks/reports/``.

Usage:
    PYTHONPATH=src python benchmarks/bench_shard.py            # full
    PYTHONPATH=src python benchmarks/bench_shard.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.algorithms import count_kcliques  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.obs.profile import HistoryStore  # noqa: E402
from repro.obs.profile.straggler import render_straggler_report  # noqa: E402
from repro.shard import (  # noqa: E402
    SHARD_POLICIES,
    ShardedGamma,
    build_sharded_manifest,
    canonical_manifest_bytes,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_shard.json"
REPORTS_DIR = REPO_ROOT / "benchmarks" / "reports"
DEFAULT_HISTORY = REPORTS_DIR / "history"

#: The acceptance bar: 4 simulated GPUs with work stealing must beat one
#: GPU by this factor on 4-clique (simulated clock, compute-bound graph).
SPEEDUP_BAR = 1.5

#: Wall-clock bar for the process executor at 4 shards, asserted only on
#: hosts with at least :data:`WALL_SPEEDUP_MIN_CORES` cores.
WALL_SPEEDUP_BAR = 1.4
WALL_SPEEDUP_MIN_CORES = 4


def _graph(quick: bool):
    if quick:
        return generators.erdos_renyi(500, 15_000, seed=5, name="er500")
    return generators.erdos_renyi(900, 40_000, seed=5, name="er900")


def run(quick: bool, history_dir=DEFAULT_HISTORY) -> dict:
    graph = _graph(quick)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    rows = []
    baseline_seconds = None
    baseline_cliques = None
    straggler = None
    history = HistoryStore(history_dir) if history_dir else None
    try:
        for policy in SHARD_POLICIES:
            for num_shards in (1, 2, 4):
                engine = ShardedGamma(graph, num_shards=num_shards,
                                      policy=policy)
                start = time.perf_counter()
                result = count_kcliques(engine, 4)
                wall = time.perf_counter() - start
                seconds = engine.simulated_seconds
                if baseline_cliques is None:
                    baseline_cliques = result.cliques
                    baseline_seconds = seconds
                assert result.cliques == baseline_cliques, (
                    f"{policy}/{num_shards}: count changed "
                    f"({result.cliques} != {baseline_cliques})"
                )
                utilization = engine.shard_utilization()
                speedup = baseline_seconds / seconds
                rows.append({
                    "policy": policy,
                    "gpus": num_shards,
                    "executor": "serial",
                    "simulated_seconds": seconds,
                    "speedup": round(speedup, 3),
                    "utilization": [round(u, 4) for u in utilization],
                    "cliques": result.cliques,
                })
                if history is not None:
                    history.append(
                        bench="shard", workload="4-clique",
                        arm=f"{policy}x{num_shards}",
                        wall_seconds=wall, simulated_seconds=seconds,
                        clock_buckets=engine.shard_states()[0]
                        ["clock_buckets"],
                    )
                if policy == "stealing" and num_shards == 4:
                    # The acceptance-criterion artifact: the merged
                    # manifest must embed the straggler section, and the
                    # rendered report ships as a bench artifact.
                    manifest = build_sharded_manifest(
                        engine, system="GAMMA", dataset=graph.name,
                        task="kcl4", wall_seconds=wall,
                    )
                    assert "straggler" in manifest, (
                        "stealing x4 manifest lost its straggler section"
                    )
                    straggler = manifest["straggler"]
                    REPORTS_DIR.mkdir(exist_ok=True)
                    (REPORTS_DIR / "straggler_shard.txt").write_text(
                        render_straggler_report(straggler) + "\n")
                util = ", ".join(f"{u:.0%}" for u in utilization)
                print(f"  {policy:9s} x{num_shards}: "
                      f"{seconds * 1e3:8.3f} ms  "
                      f"speedup {speedup:4.2f}x  util [{util}]")
    finally:
        if history is not None:
            history.close()

    assert straggler is not None, "stealing x4 never ran"
    print("\nstraggler report (stealing x4):")
    print(render_straggler_report(straggler))
    best = max(r["speedup"] for r in rows
               if r["policy"] == "stealing" and r["gpus"] == 4)
    print(f"\n4-GPU stealing speedup: {best:.2f}x (bar: {SPEEDUP_BAR}x)")
    assert best >= SPEEDUP_BAR, (
        f"sharded speedup regressed: {best:.2f}x < {SPEEDUP_BAR}x"
    )
    wallclock = _wall_clock_section(graph, history_dir)
    return {
        "workload": "4-clique",
        "graph": {"vertices": graph.num_vertices, "edges": graph.num_edges},
        "speedup_bar": SPEEDUP_BAR,
        "best_4gpu_stealing_speedup": best,
        "straggler": straggler,
        "wallclock": wallclock,
        "rows": rows,
    }


def _wall_clock_section(graph, history_dir) -> dict:
    """Time the 4-shard workload under both executors on the wall clock.

    The simulated clock is identical by construction (the parity suite
    pins it); what this section measures is whether forked workers buy
    real elapsed time.  The ≥ :data:`WALL_SPEEDUP_BAR` assertion only
    arms on hosts with enough cores to make that physically possible.
    """
    cores = os.cpu_count() or 1
    print(f"\nwall-clock: serial vs process at 4 shards ({cores} cores)")
    history = HistoryStore(history_dir) if history_dir else None
    timings = {}
    blobs = {}
    cliques = {}
    try:
        for executor in ("serial", "process"):
            engine = ShardedGamma(graph, num_shards=4, policy="stealing",
                                  executor=executor)
            try:
                start = time.perf_counter()
                result = count_kcliques(engine, 4)
                wall = time.perf_counter() - start
                simulated = engine.simulated_seconds
                manifest = build_sharded_manifest(
                    engine, system="GAMMA", dataset=graph.name, task="kcl4")
                blobs[executor] = canonical_manifest_bytes(manifest)
                cliques[executor] = result.cliques
                timings[executor] = wall
                if history is not None:
                    history.append(
                        bench="shard", workload="4-clique",
                        arm=f"wallclock-{executor}x4",
                        wall_seconds=wall, simulated_seconds=simulated,
                        clock_buckets=engine.shard_states()[0]
                        ["clock_buckets"],
                    )
            finally:
                engine.close()
            print(f"  {executor:8s}: {wall * 1e3:9.1f} ms wall")
    finally:
        if history is not None:
            history.close()

    assert cliques["serial"] == cliques["process"], (
        "executors disagree on the clique count"
    )
    assert blobs["serial"] == blobs["process"], (
        "canonical manifest bytes differ between executors"
    )
    wall_speedup = timings["serial"] / timings["process"]
    asserted = cores >= WALL_SPEEDUP_MIN_CORES
    print(f"  process wall speedup: {wall_speedup:.2f}x "
          f"(bar {WALL_SPEEDUP_BAR}x, "
          f"{'armed' if asserted else f'not armed: {cores} cores'})")
    if asserted:
        assert wall_speedup >= WALL_SPEEDUP_BAR, (
            f"process executor wall speedup {wall_speedup:.2f}x "
            f"< {WALL_SPEEDUP_BAR}x on a {cores}-core host"
        )
    return {
        "cores": cores,
        "gpus": 4,
        "policy": "stealing",
        "wall_seconds": timings,
        "wall_speedup": round(wall_speedup, 3),
        "wall_speedup_bar": WALL_SPEEDUP_BAR,
        "bar_asserted": asserted,
        "canonical_manifest_parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph for CI smoke runs")
    parser.add_argument("--out", default=str(DEFAULT_OUTPUT))
    parser.add_argument("--history-dir", default=str(DEFAULT_HISTORY),
                        help="perf-history store directory (empty string "
                             "disables the append)")
    args = parser.parse_args(argv)
    report = run(args.quick,
                 history_dir=Path(args.history_dir)
                 if args.history_dir else None)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
