"""Table II — dataset stand-ins (paper sizes vs scaled builds)."""

from repro.bench.figures import table2_datasets


def bench_table2(figure_bench):
    figure_bench("table2", table2_datasets)
