"""Fig. 12 — k-clique: GAMMA vs Pangolin-GPU/ST vs Peregrine."""

from repro.bench.figures import fig12_kcl


def bench_fig12(figure_bench):
    figure_bench("fig12", fig12_kcl)
