"""Crossover map: minimum device size per system (memory-axis view of the
paper's scalability claim)."""

from repro.bench.crossover import device_size_sweep


def bench_crossover(figure_bench):
    figure_bench("crossover", device_size_sweep)
