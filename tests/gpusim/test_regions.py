"""Tests for host-memory regions and the index/page arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.errors import DeviceOutOfMemory, HostOutOfMemory
from repro.gpusim import (
    expand_ranges,
    make_platform,
    range_lengths_in_units,
    units_for_indices,
)
from repro.gpusim import clock as clk
from repro.gpusim import stats as st


@pytest.fixture
def platform():
    return make_platform()


@pytest.fixture
def payload():
    return np.arange(65536, dtype=np.int64)  # 512 KiB = 128 pages


class TestExpandRanges:
    def test_simple(self):
        out = expand_ranges(np.array([0, 5]), np.array([2, 8]))
        assert out.tolist() == [0, 1, 5, 6, 7]

    def test_empty_ranges_skipped(self):
        out = expand_ranges(np.array([0, 3, 3]), np.array([2, 3, 5]))
        assert out.tolist() == [0, 1, 3, 4]

    def test_all_empty(self):
        out = expand_ranges(np.array([4, 4]), np.array([4, 4]))
        assert out.tolist() == []

    def test_no_ranges(self):
        assert expand_ranges(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)).tolist() == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            expand_ranges(np.array([5]), np.array([3]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_ranges(np.array([1, 2]), np.array([3]))

    @given(
        hst.lists(
            hst.tuples(
                hst.integers(min_value=0, max_value=500),
                hst.integers(min_value=0, max_value=30),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_expansion(self, spans):
        starts = np.array([s for s, __ in spans], dtype=np.int64)
        ends = np.array([s + n for s, n in spans], dtype=np.int64)
        expected = [i for s, n in spans for i in range(s, s + n)]
        assert expand_ranges(starts, ends).tolist() == expected


class TestUnitArithmetic:
    def test_units_for_indices_dedups(self):
        # itemsize 8, unit 128 -> 16 elements per line
        idx = np.array([0, 1, 15, 16, 300])
        assert units_for_indices(idx, 8, 128).tolist() == [0, 1, 18]

    def test_units_empty(self):
        assert units_for_indices(np.array([], dtype=np.int64), 8, 128).tolist() == []

    def test_range_lengths_in_units(self):
        # elements of 8 bytes, 4096-byte pages -> 512 elements/page
        starts = np.array([0, 510, 512])
        ends = np.array([10, 514, 1024])
        out = range_lengths_in_units(starts, ends, 8, 4096)
        assert out.tolist() == [1, 2, 1]

    def test_range_lengths_empty_range_is_zero(self):
        out = range_lengths_in_units(np.array([7]), np.array([7]), 8, 4096)
        assert out.tolist() == [0]


class TestUnifiedRegion:
    def test_gather_returns_values(self, platform, payload):
        region = platform.unified_region("u", payload, buffer_pages=8)
        got = region.gather(np.array([3, 100, 65535]))
        assert got.tolist() == [3, 100, 65535]

    def test_first_touch_faults_then_hits(self, platform, payload):
        region = platform.unified_region("u", payload, buffer_pages=8)
        region.gather(np.array([0, 1, 2]))  # one page, cold
        assert platform.counters.get(st.PAGE_FAULTS) == 1
        region.gather(np.array([3, 4]))  # same page, warm
        assert platform.counters.get(st.PAGE_FAULTS) == 1
        assert platform.counters.get(st.PAGE_HITS) == 1

    def test_eviction_under_pressure(self, platform, payload):
        region = platform.unified_region("u", payload, buffer_pages=2)
        pages = platform.spec.page_size // payload.itemsize
        for page in range(4):
            region.gather(np.array([page * pages]))
        assert platform.counters.get(st.PAGE_FAULTS) == 4
        assert region.buffer.evictions == 2

    def test_lru_eviction_order(self, platform, payload):
        region = platform.unified_region("u", payload, buffer_pages=2)
        per_page = platform.spec.page_size // payload.itemsize
        region.gather(np.array([0 * per_page]))      # page 0
        region.gather(np.array([1 * per_page]))      # page 1
        region.gather(np.array([0 * per_page]))      # touch page 0 again
        region.gather(np.array([2 * per_page]))      # evicts page 1 (LRU)
        assert region.buffer.is_resident(0)
        assert not region.buffer.is_resident(1)
        assert region.buffer.is_resident(2)

    def test_buffer_consumes_device_memory(self, payload):
        platform = make_platform()
        before = platform.device.used
        region = platform.unified_region("u", payload, buffer_pages=8)
        assert platform.device.used - before == 8 * platform.spec.page_size
        region.release()
        assert platform.device.used == before

    def test_migration_charges_pcie_time(self, platform, payload):
        region = platform.unified_region("u", payload, buffer_pages=8)
        t0 = platform.clock.time_in(clk.PCIE_UNIFIED)
        region.gather(np.array([0]))
        migrated = platform.clock.time_in(clk.PCIE_UNIFIED) - t0
        expected = platform.spec.page_size / platform.cost.pcie_bandwidth
        assert migrated == pytest.approx(expected)

    def test_whole_page_migrated_for_one_byte_need(self, platform, payload):
        """The unified-memory pathology: a single-element read moves 4 KB."""
        region = platform.unified_region("u", payload, buffer_pages=8)
        region.gather(np.array([0]))
        assert platform.counters.get(st.BYTES_H2D) == platform.spec.page_size


class TestZeroCopyRegion:
    def test_gather_returns_values(self, platform, payload):
        region = platform.zerocopy_region("z", payload)
        assert region.gather(np.array([7])).tolist() == [7]

    def test_transaction_granularity(self, platform, payload):
        region = platform.zerocopy_region("z", payload)
        per_line = platform.spec.zerocopy_line // payload.itemsize
        region.gather(np.arange(per_line))  # exactly one line
        assert platform.counters.get(st.ZC_TRANSACTIONS) == 1

    def test_no_caching_between_calls(self, platform, payload):
        region = platform.zerocopy_region("z", payload)
        region.gather(np.array([0]))
        region.gather(np.array([0]))
        assert platform.counters.get(st.ZC_TRANSACTIONS) == 2
        assert platform.counters.get(st.PAGE_FAULTS) == 0

    def test_bytes_moved_are_line_sized(self, platform, payload):
        region = platform.zerocopy_region("z", payload)
        region.gather(np.array([0]))
        assert platform.counters.get(st.BYTES_H2D) == platform.spec.zerocopy_line

    def test_no_device_memory_used(self, payload):
        platform = make_platform()
        before = platform.device.used
        platform.zerocopy_region("z", payload)
        assert platform.device.used == before


class TestHybridRegion:
    def test_duplicates_host_storage(self, payload):
        platform = make_platform()
        region = platform.hybrid_region("h", payload, buffer_pages=8)
        assert region.nbytes == 2 * payload.nbytes
        assert platform.host_used == 2 * payload.nbytes

    def test_mode_split_routes_traffic(self, platform, payload):
        region = platform.hybrid_region("h", payload, buffer_pages=8)
        region.set_unified_pages(np.array([0]))
        per_page = platform.spec.page_size // payload.itemsize
        region.gather(np.array([0, per_page]))  # page 0 unified, page 1 zc
        assert platform.counters.get(st.PAGE_FAULTS) == 1
        assert platform.counters.get(st.ZC_TRANSACTIONS) == 1

    def test_demoted_pages_leave_buffer(self, platform, payload):
        region = platform.hybrid_region("h", payload, buffer_pages=8)
        region.set_unified_pages(np.array([0]))
        region.gather(np.array([0]))
        assert region.buffer.is_resident(0)
        region.set_unified_pages(np.array([1]))
        assert not region.buffer.is_resident(0)

    def test_oversubscribed_unified_set_thrashes(self, platform, payload):
        """Routing more pages to unified than the buffer holds is allowed
        (the unified-only baseline does it) and shows up as eviction churn."""
        region = platform.hybrid_region("h", payload, buffer_pages=2)
        region.set_unified_pages(np.arange(8))
        per_page = platform.spec.page_size // payload.itemsize
        for sweep in range(2):
            for page in range(8):
                region.gather(np.array([page * per_page]))
        assert region.buffer.evictions > 0
        assert platform.counters.get(st.PAGE_FAULTS) == 16  # nothing survives

    def test_gather_ranges_values_correct(self, platform, payload):
        region = platform.hybrid_region("h", payload, buffer_pages=8)
        region.set_unified_pages(np.array([0, 1]))
        values, lengths = region.gather_ranges(
            np.array([10, 60000]), np.array([15, 60005])
        )
        assert values.tolist() == [10, 11, 12, 13, 14,
                                   60000, 60001, 60002, 60003, 60004]
        assert lengths.tolist() == [5, 5]


class TestDeviceResidentRegion:
    def test_staging_copies_over_pcie(self, payload):
        platform = make_platform()
        platform.device_region("d", payload)
        assert platform.counters.get(st.BYTES_H2D) == payload.nbytes

    def test_large_array_raises_device_oom(self):
        platform = make_platform(device_memory_bytes=1024)
        with pytest.raises(DeviceOutOfMemory):
            platform.device_region("d", np.zeros(1024, dtype=np.int64))

    def test_access_charges_device_bandwidth_only(self, payload):
        platform = make_platform()
        region = platform.device_region("d", payload)
        platform.clock.reset()
        region.gather(np.array([1, 2, 3]))
        assert platform.clock.time_in(clk.DEVICE_MEM) > 0
        assert platform.clock.time_in(clk.PCIE_ZEROCOPY) == 0
        assert platform.clock.time_in(clk.PCIE_UNIFIED) == 0


class TestHostBudget:
    def test_budget_enforced(self):
        platform = make_platform()
        too_big = platform.spec.host_memory_bytes + 1
        with pytest.raises(HostOutOfMemory):
            platform.register_host_bytes(too_big, "huge")

    def test_peak_tracked(self, payload):
        platform = make_platform()
        region = platform.zerocopy_region("z", payload)
        region.release()
        assert platform.host_used == 0
        assert platform.host_peak == payload.nbytes

    def test_registration_charges_prep_time(self, payload):
        platform = make_platform()
        platform.zerocopy_region("z", payload)
        prep = platform.clock.time_in(clk.HOST_PREP)
        expected = (
            platform.cost.host_register_fixed
            + payload.nbytes / platform.cost.host_register_bandwidth
        )
        assert prep == pytest.approx(expected)

    def test_fixed_cost_charged_once(self, payload):
        platform = make_platform()
        platform.zerocopy_region("a", payload)
        first = platform.clock.time_in(clk.HOST_PREP)
        platform.zerocopy_region("b", payload)
        second = platform.clock.time_in(clk.HOST_PREP) - first
        assert second == pytest.approx(payload.nbytes / platform.cost.host_register_bandwidth)
