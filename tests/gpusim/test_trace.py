"""Tests for the execution-trace recorder."""

import pytest

from repro.algorithms import triangle_count
from repro.core import Gamma
from repro.graph import kronecker
from repro.gpusim import TraceRecorder, make_platform
from repro.gpusim import clock as clk


class TestTraceRecorder:
    def test_listener_accumulates(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance(clk.COMPUTE, 0.5)
        platform.clock.advance(clk.COMPUTE, 0.5)
        platform.clock.advance(clk.PCIE_EXPLICIT, 1.0)
        assert trace.total == pytest.approx(2.0)
        summary = dict((name, share) for name, __, share in trace.summary())
        assert summary[clk.COMPUTE] == pytest.approx(0.5)

    def test_summary_sorted_descending(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance("a", 1.0)
        platform.clock.advance("b", 3.0)
        assert [name for name, __, __ in trace.summary()] == ["b", "a"]

    def test_events_optional(self):
        platform = make_platform()
        trace = TraceRecorder(keep_events=True).attach(platform)
        platform.clock.advance("x", 1.0)
        platform.clock.advance("y", 2.0)
        assert len(trace.events) == 2
        assert trace.events[1][1] == "y"

    def test_events_off_by_default(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance("x", 1.0)
        assert trace.events == []

    def test_render(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance(clk.COMPUTE, 3.0)
        platform.clock.advance(clk.PAGE_FAULT, 1.0)
        out = trace.render(width=20)
        assert "compute" in out
        assert "75.0%" in out

    def test_render_empty(self):
        assert "no simulated time" in TraceRecorder().render()

    def test_reset(self):
        platform = make_platform()
        trace = TraceRecorder(keep_events=True).attach(platform)
        platform.clock.advance("x", 1.0)
        trace.reset()
        assert trace.total == 0.0
        assert trace.events == []

    def test_trace_matches_clock_on_real_run(self):
        graph = kronecker(7, 4, seed=1)
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        with Gamma(graph, platform=platform) as engine:
            triangle_count(engine)
            assert trace.total == pytest.approx(platform.clock.total)
