"""Tests for the execution-trace recorder, clock listeners and PhaseTimer."""

import time

import pytest

from repro.algorithms import triangle_count
from repro.core import Gamma
from repro.graph import kronecker
from repro.gpusim import TraceRecorder, make_platform
from repro.gpusim import clock as clk
from repro.gpusim.clock import SimClock
from repro.gpusim.trace import PhaseTimer


class TestTraceRecorder:
    def test_listener_accumulates(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance(clk.COMPUTE, 0.5)
        platform.clock.advance(clk.COMPUTE, 0.5)
        platform.clock.advance(clk.PCIE_EXPLICIT, 1.0)
        assert trace.total == pytest.approx(2.0)
        summary = dict((name, share) for name, __, share in trace.summary())
        assert summary[clk.COMPUTE] == pytest.approx(0.5)

    def test_summary_sorted_descending(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance("a", 1.0)
        platform.clock.advance("b", 3.0)
        assert [name for name, __, __ in trace.summary()] == ["b", "a"]

    def test_events_optional(self):
        platform = make_platform()
        trace = TraceRecorder(keep_events=True).attach(platform)
        platform.clock.advance("x", 1.0)
        platform.clock.advance("y", 2.0)
        assert len(trace.events) == 2
        assert trace.events[1][1] == "y"

    def test_events_off_by_default(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance("x", 1.0)
        assert trace.events == []

    def test_render(self):
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        platform.clock.advance(clk.COMPUTE, 3.0)
        platform.clock.advance(clk.PAGE_FAULT, 1.0)
        out = trace.render(width=20)
        assert "compute" in out
        assert "75.0%" in out

    def test_render_empty(self):
        assert "no simulated time" in TraceRecorder().render()

    def test_reset(self):
        platform = make_platform()
        trace = TraceRecorder(keep_events=True).attach(platform)
        platform.clock.advance("x", 1.0)
        trace.reset()
        assert trace.total == 0.0
        assert trace.events == []

    def test_trace_matches_clock_on_real_run(self):
        graph = kronecker(7, 4, seed=1)
        platform = make_platform()
        trace = TraceRecorder().attach(platform)
        with Gamma(graph, platform=platform) as engine:
            triangle_count(engine)
            assert trace.total == pytest.approx(platform.clock.total)


class TestClockListeners:
    def test_fan_out_to_multiple_listeners(self):
        clock = SimClock()
        seen_a, seen_b = [], []
        clock.add_listener(lambda cat, s: seen_a.append((cat, s)))
        clock.add_listener(lambda cat, s: seen_b.append((cat, s)))
        clock.advance("compute", 1.0)
        assert seen_a == [("compute", 1.0)]
        assert seen_b == [("compute", 1.0)]

    def test_remove_listener(self):
        clock = SimClock()
        seen = []
        fn = clock.add_listener(lambda cat, s: seen.append(cat))
        clock.remove_listener(fn)
        clock.remove_listener(fn)  # second removal is a no-op
        clock.advance("compute", 1.0)
        assert seen == []

    def test_two_trace_recorders_both_accumulate(self):
        platform = make_platform()
        first = TraceRecorder().attach(platform)
        second = TraceRecorder().attach(platform)
        platform.clock.advance(clk.COMPUTE, 2.0)
        assert first.total == pytest.approx(2.0)
        assert second.total == pytest.approx(2.0)

    def test_legacy_listener_shim_is_gone(self):
        # The deprecated single-slot `listener` property was removed in
        # favour of add_listener()/remove_listener().  Check the *class*:
        # after a property is deleted, instance assignment would silently
        # create a plain attribute, so hasattr on an instance alone would
        # not catch a reintroduction.
        assert "listener" not in vars(SimClock)
        assert not hasattr(SimClock, "listener")
        assert not hasattr(SimClock(), "listener")
        assert "_legacy_listener" not in vars(SimClock())


class TestPhaseTimerNesting:
    def test_flat_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.001)
        with timer.phase("a"):
            time.sleep(0.001)
        assert timer.seconds("a") > 0

    def test_nested_phase_charges_self_time_only(self):
        # Generous inner/outer gap: outer self-time is ~2 ms plus
        # scheduling noise, so a 50 ms inner phase keeps the comparison
        # safe even on a loaded CI machine.
        timer = PhaseTimer()
        with timer.phase("outer"):
            time.sleep(0.002)
            with timer.phase("inner"):
                time.sleep(0.05)
        inner = timer.seconds("inner")
        outer = timer.seconds("outer")
        assert inner >= 0.05
        # Self time: the outer phase must not re-count the inner 50 ms.
        assert outer < inner

    def test_reentrant_same_name(self):
        timer = PhaseTimer()
        with timer.phase("p"):
            time.sleep(0.001)
            with timer.phase("p"):
                time.sleep(0.001)
        # Both activations recorded once each, no double counting: the
        # total equals the gross outer duration.
        assert timer.seconds("p") == pytest.approx(timer.total, rel=0.5)

    def test_render_preserves_first_entry_order(self):
        timer = PhaseTimer()
        with timer.phase("first"):
            with timer.phase("second"):
                pass
        out = timer.render()
        assert out.index("first") < out.index("second")
