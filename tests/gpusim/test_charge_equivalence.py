"""Fast-vs-reference charge-pipeline equivalence (the tentpole invariant).

The batched pipeline (bincount page derivation, ``ChargeBatch`` memoization,
argpartition eviction) must produce *bit-for-bit* the same simulated clock
buckets and event counters as the retained reference implementations, for
every region type, on randomized access patterns — including the repeated
identical batches a two-pass write strategy issues and hybrid mode-map
replans that invalidate the memo.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.gpusim import (
    HybridRegion,
    UnifiedRegion,
    ZeroCopyRegion,
    make_platform,
    regions,
)

N_ELEMENTS = 4096  # 32 KiB payload = 8 pages at the default 4 KiB page


@hst.composite
def access_scripts(draw):
    """A replayable sequence of region accesses."""
    n_ops = draw(hst.integers(min_value=1, max_value=12))
    ops = []
    for __ in range(n_ops):
        kind = draw(
            hst.sampled_from(
                ["gather", "ranges", "charge", "charge_twice", "replan"]
            )
        )
        if kind == "gather":
            idx = draw(
                hst.lists(
                    hst.integers(min_value=0, max_value=N_ELEMENTS - 1),
                    max_size=64,
                )
            )
            ops.append((kind, np.array(idx, dtype=np.int64)))
        elif kind == "replan":
            pages = draw(
                hst.lists(hst.integers(min_value=0, max_value=7), max_size=8)
            )
            ops.append((kind, np.array(sorted(set(pages)), dtype=np.int64)))
        else:
            n_ranges = draw(hst.integers(min_value=0, max_value=12))
            starts, ends = [], []
            for __ in range(n_ranges):
                s = draw(hst.integers(min_value=0, max_value=N_ELEMENTS - 1))
                length = draw(hst.integers(min_value=0, max_value=96))
                starts.append(s)
                ends.append(min(s + length, N_ELEMENTS))
            ops.append(
                (
                    kind,
                    np.array(starts, dtype=np.int64),
                    np.array(ends, dtype=np.int64),
                )
            )
    return ops


def _replay(region_factory, ops):
    platform = make_platform()
    region = region_factory(platform)
    for op in ops:
        if op[0] == "gather":
            region.gather(op[1])
        elif op[0] == "replan":
            if hasattr(region, "set_unified_pages"):
                region.set_unified_pages(op[1])
        elif op[0] == "ranges":
            region.gather_ranges(op[1], op[2])
        elif op[0] == "charge":
            region.charge_ranges(op[1], op[2])
        else:  # charge_twice: the two-pass strategy's repeated batch
            region.charge_ranges(op[1], op[2])
            region.charge_ranges(op[1], op[2])
    return platform.clock.snapshot(), platform.counters.snapshot()


def _assert_equivalent(region_factory, ops):
    with perf.pipeline(perf.FAST):
        fast_clock, fast_counters = _replay(region_factory, ops)
    with perf.pipeline(perf.REFERENCE):
        ref_clock, ref_counters = _replay(region_factory, ops)
    assert fast_clock == ref_clock  # bit-for-bit, not approx
    assert fast_counters == ref_counters


def _payload():
    return np.arange(N_ELEMENTS, dtype=np.int64)


class TestChargeEquivalence:
    @given(access_scripts())
    @settings(max_examples=60, deadline=None)
    def test_unified(self, ops):
        _assert_equivalent(
            lambda p: UnifiedRegion("u", _payload(), p, buffer_pages=4), ops
        )

    @given(access_scripts())
    @settings(max_examples=60, deadline=None)
    def test_unified_tiny_buffer_thrashes_identically(self, ops):
        _assert_equivalent(
            lambda p: UnifiedRegion("u", _payload(), p, buffer_pages=1), ops
        )

    @given(access_scripts())
    @settings(max_examples=60, deadline=None)
    def test_zerocopy(self, ops):
        _assert_equivalent(lambda p: ZeroCopyRegion("z", _payload(), p), ops)

    @given(access_scripts())
    @settings(max_examples=60, deadline=None)
    def test_hybrid(self, ops):
        def factory(p):
            region = HybridRegion("h", _payload(), p, buffer_pages=4)
            region.set_unified_pages(np.array([0, 2, 5], dtype=np.int64))
            return region

        _assert_equivalent(factory, ops)


class TestMemoSafety:
    def test_memo_does_not_leak_across_different_batches(self):
        """Two different (but same-length) batches must charge differently
        even when issued back to back."""
        platform = make_platform()
        region = UnifiedRegion("u", _payload(), platform, buffer_pages=8)
        with perf.pipeline(perf.FAST):
            region.charge_ranges(
                np.array([0], dtype=np.int64), np.array([512], dtype=np.int64)
            )
            before = platform.counters.snapshot()
            region.charge_ranges(
                np.array([2048], dtype=np.int64),
                np.array([2560], dtype=np.int64),
            )
            after = platform.counters.snapshot()
        assert after["page_faults"] > before["page_faults"]

    def test_hybrid_replan_invalidates_memo(self):
        """The same batch object charged before and after a mode-map replan
        must be re-derived (different unified/zero-copy split)."""
        starts = np.array([0], dtype=np.int64)
        ends = np.array([1024], dtype=np.int64)  # pages 0-1

        def run(replan_between):
            platform = make_platform()
            region = HybridRegion("h", _payload(), platform, buffer_pages=8)
            region.set_unified_pages(np.arange(8, dtype=np.int64))
            with perf.pipeline(perf.FAST):
                region.charge_ranges(starts, ends)
                if replan_between:
                    region.set_unified_pages(np.empty(0, dtype=np.int64))
                region.charge_ranges(starts, ends)
            return platform.counters.snapshot()

        with_replan = run(True)
        without = run(False)
        assert with_replan.get("zc_transactions", 0) > 0
        assert "zc_transactions" not in without


class TestUnitDerivationEquivalence:
    """The sort-free `dedup_units` / `covered_units` derivations must match
    their `np.unique` reference twins exactly, in both density regimes."""

    @given(
        hst.lists(hst.integers(min_value=0, max_value=511), max_size=512),
        hst.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_dedup_units(self, raw_blocks, total_units):
        blocks = np.array(raw_blocks, dtype=np.int64) % total_units
        with perf.pipeline(perf.FAST):
            fast = regions.dedup_units(blocks, total_units)
        with perf.pipeline(perf.REFERENCE):
            ref = regions.dedup_units(blocks, total_units)
        np.testing.assert_array_equal(fast, ref)
        assert fast.dtype == ref.dtype

    @given(
        hst.lists(
            hst.tuples(
                hst.integers(min_value=0, max_value=63),
                hst.integers(min_value=0, max_value=15),
            ),
            max_size=24,
        ),
        hst.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_covered_units(self, raw_ranges, total_units):
        first = np.array([f % total_units for f, __ in raw_ranges], dtype=np.int64)
        last = np.array(
            [min(f % total_units + l, total_units - 1) for f, l in raw_ranges],
            dtype=np.int64,
        )
        with perf.pipeline(perf.FAST):
            fast = regions.covered_units(first, last, total_units)
        with perf.pipeline(perf.REFERENCE):
            ref = regions.covered_units(first, last, total_units)
        np.testing.assert_array_equal(fast, ref)


@pytest.mark.parametrize("mode", perf.PIPELINES)
def test_pipeline_context_restores(mode):
    previous = perf.pipeline_mode()
    with perf.pipeline(mode):
        assert perf.pipeline_mode() == mode
    assert perf.pipeline_mode() == previous
