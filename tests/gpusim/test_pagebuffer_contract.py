"""Contract tests for :class:`PageBuffer`: duplicate-input hardening and
the amortized (argpartition) vs. reference (lexsort) eviction equivalence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.gpusim import PageBuffer


@hst.composite
def raw_traces(draw):
    """Access traces WITHOUT the unique/sorted guarantee (the hardened
    contract must dedupe these itself)."""
    total_pages = draw(hst.integers(min_value=1, max_value=48))
    capacity = draw(hst.integers(min_value=0, max_value=24))
    n_batches = draw(hst.integers(min_value=0, max_value=16))
    batches = [
        np.array(
            draw(
                hst.lists(
                    hst.integers(min_value=0, max_value=total_pages - 1),
                    max_size=24,
                )
            ),
            dtype=np.int64,
        )
        for __ in range(n_batches)
    ]
    return total_pages, capacity, batches


class TestDuplicateInputs:
    def test_duplicates_do_not_double_count_residency(self):
        buffer = PageBuffer(capacity_pages=8, total_pages=16)
        hits, misses = buffer.access(np.array([3, 3, 3, 5], dtype=np.int64))
        assert (hits, misses) == (0, 2)
        assert buffer.resident_count == 2
        assert buffer.resident_pages.tolist() == [3, 5]

    def test_duplicates_with_zero_capacity(self):
        buffer = PageBuffer(capacity_pages=0, total_pages=16)
        hits, misses = buffer.access(np.array([7, 7, 2], dtype=np.int64))
        assert (hits, misses) == (0, 2)
        assert buffer.resident_count == 0

    def test_unsorted_input_is_accepted(self):
        buffer = PageBuffer(capacity_pages=4, total_pages=8)
        hits, misses = buffer.access(np.array([5, 1, 3], dtype=np.int64))
        assert (hits, misses) == (0, 3)
        assert buffer.resident_pages.tolist() == [1, 3, 5]

    @given(raw_traces())
    @settings(max_examples=60, deadline=None)
    def test_duplicate_trace_equals_deduped_trace(self, trace):
        total_pages, capacity, batches = trace
        raw = PageBuffer(capacity, total_pages)
        clean = PageBuffer(capacity, total_pages)
        for batch in batches:
            got = raw.access(batch)
            want = clean.access(np.unique(batch))
            assert got == want
        assert raw.resident_pages.tolist() == clean.resident_pages.tolist()
        assert raw.evictions == clean.evictions


class TestEvictionOrder:
    def test_lru_evicts_oldest_first(self):
        buffer = PageBuffer(capacity_pages=2, total_pages=8)
        buffer.access(np.array([0], dtype=np.int64))
        buffer.access(np.array([1], dtype=np.int64))
        buffer.access(np.array([2], dtype=np.int64))  # evicts 0 (oldest)
        assert buffer.resident_pages.tolist() == [1, 2]

    def test_tie_breaks_by_page_id(self):
        buffer = PageBuffer(capacity_pages=2, total_pages=8)
        buffer.access(np.array([4, 6], dtype=np.int64))  # same tick
        buffer.access(np.array([1], dtype=np.int64))  # evicts 4 (lower id)
        assert buffer.resident_pages.tolist() == [1, 6]

    def test_drop_then_readmit_is_treated_as_fresh(self):
        """A dropped page loses its residency AND its recency: on re-admit
        it competes with its new tick, not its old one."""
        buffer = PageBuffer(capacity_pages=2, total_pages=8)
        buffer.access(np.array([0], dtype=np.int64))  # tick 1
        buffer.access(np.array([1], dtype=np.int64))  # tick 2
        buffer.drop(np.array([0], dtype=np.int64))
        assert buffer.resident_pages.tolist() == [1]
        buffer.access(np.array([0], dtype=np.int64))  # re-admit at tick 3
        buffer.access(np.array([2], dtype=np.int64))  # tick 4: evict 1, not 0
        assert buffer.resident_pages.tolist() == [0, 2]

    @given(raw_traces())
    @settings(max_examples=60, deadline=None)
    def test_fast_eviction_matches_reference(self, trace):
        """argpartition over the packed (last_use, id) key must evict the
        exact same victim set as the reference full lexsort."""
        total_pages, capacity, batches = trace
        with perf.pipeline(perf.FAST):
            fast = PageBuffer(capacity, total_pages)
            fast_results = [fast.access(b) for b in batches]
        with perf.pipeline(perf.REFERENCE):
            ref = PageBuffer(capacity, total_pages)
            ref_results = [ref.access(b) for b in batches]
        assert fast_results == ref_results
        assert fast.resident_pages.tolist() == ref.resident_pages.tolist()
        assert fast.evictions == ref.evictions
