"""Tests for the capacity-limited device-memory allocator."""

import pytest

from repro.errors import DeviceOutOfMemory
from repro.gpusim import DeviceMemory


class TestDeviceMemory:
    def test_allocate_tracks_usage(self):
        mem = DeviceMemory(1000)
        mem.allocate(400, "a")
        assert mem.used == 400
        assert mem.available == 600

    def test_over_capacity_raises(self):
        mem = DeviceMemory(1000)
        with pytest.raises(DeviceOutOfMemory) as excinfo:
            mem.allocate(1001, "big")
        assert excinfo.value.requested == 1001
        assert excinfo.value.available == 1000
        assert "big" in str(excinfo.value)

    def test_exact_capacity_allowed(self):
        mem = DeviceMemory(1000)
        mem.allocate(1000)
        assert mem.available == 0

    def test_free_returns_capacity(self):
        mem = DeviceMemory(1000)
        alloc = mem.allocate(600)
        mem.free(alloc)
        assert mem.used == 0
        mem.allocate(1000)  # must not raise

    def test_double_free_raises(self):
        mem = DeviceMemory(1000)
        alloc = mem.allocate(100)
        mem.free(alloc)
        with pytest.raises(ValueError):
            mem.free(alloc)

    def test_peak_survives_free(self):
        mem = DeviceMemory(1000)
        a = mem.allocate(700)
        mem.free(a)
        mem.allocate(100)
        assert mem.peak == 700

    def test_peak_by_tag(self):
        mem = DeviceMemory(1000)
        a = mem.allocate(300, "et")
        mem.allocate(200, "buffer")
        mem.free(a)
        mem.allocate(100, "et")
        assert mem.peak_for("et") == 300
        assert mem.peak_for("buffer") == 200
        assert mem.peak_for("unknown") == 0

    def test_try_allocate_returns_none_on_oom(self):
        mem = DeviceMemory(100)
        assert mem.try_allocate(200) is None
        assert mem.try_allocate(50) is not None

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(100).allocate(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)

    def test_fragmentation_free_model(self):
        """The allocator is a byte counter, not an address-space model:
        interleaved alloc/free cannot fragment."""
        mem = DeviceMemory(100)
        a = mem.allocate(50)
        mem.allocate(25)
        mem.free(a)
        assert mem.try_allocate(75) is not None
