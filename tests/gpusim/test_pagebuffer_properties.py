"""Property-based tests of the page buffer and related invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.gpusim import PageBuffer, make_platform
from repro.gpusim import clock as clk


@hst.composite
def access_traces(draw):
    total_pages = draw(hst.integers(min_value=1, max_value=64))
    capacity = draw(hst.integers(min_value=0, max_value=32))
    n_batches = draw(hst.integers(min_value=0, max_value=20))
    batches = [
        np.unique(
            np.array(
                draw(
                    hst.lists(
                        hst.integers(min_value=0, max_value=total_pages - 1),
                        max_size=24,
                    )
                ),
                dtype=np.int64,
            )
        )
        for __ in range(n_batches)
    ]
    return total_pages, capacity, batches


class TestPageBufferProperties:
    @given(access_traces())
    @settings(max_examples=80, deadline=None)
    def test_residency_never_exceeds_capacity(self, trace):
        total_pages, capacity, batches = trace
        buffer = PageBuffer(capacity, total_pages)
        for batch in batches:
            buffer.access(batch)
            assert buffer.resident_count <= max(capacity, 0)
            assert buffer.resident_count == len(buffer.resident_pages)

    @given(access_traces())
    @settings(max_examples=80, deadline=None)
    def test_hits_plus_misses_cover_batch(self, trace):
        total_pages, capacity, batches = trace
        buffer = PageBuffer(capacity, total_pages)
        for batch in batches:
            hits, misses = buffer.access(batch)
            assert hits + misses == len(batch)
            assert hits >= 0 and misses >= 0

    @given(access_traces())
    @settings(max_examples=50, deadline=None)
    def test_repeat_access_within_capacity_hits(self, trace):
        total_pages, capacity, batches = trace
        buffer = PageBuffer(capacity, total_pages)
        for batch in batches:
            buffer.access(batch)
            if 0 < len(batch) <= capacity:
                hits, misses = buffer.access(batch)
                assert misses == 0
                assert hits == len(batch)

    @given(access_traces())
    @settings(max_examples=50, deadline=None)
    def test_zero_capacity_never_hits(self, trace):
        total_pages, __, batches = trace
        buffer = PageBuffer(0, total_pages)
        for batch in batches:
            hits, __ = buffer.access(batch)
            assert hits == 0
            assert buffer.resident_count == 0

    def test_drop_is_exact(self):
        buffer = PageBuffer(8, 16)
        buffer.access(np.array([1, 2, 3]))
        buffer.drop(np.array([2, 9]))  # 9 was never resident
        assert buffer.resident_count == 2
        assert not buffer.is_resident(2)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageBuffer(-1, 4)


class TestClockInvariants:
    @given(
        hst.lists(
            hst.tuples(
                hst.sampled_from([clk.COMPUTE, clk.PCIE_UNIFIED, clk.HOST_PREP]),
                hst.floats(min_value=0, max_value=10, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_is_sum_of_buckets(self, charges):
        platform = make_platform()
        for category, seconds in charges:
            platform.clock.advance(category, seconds)
        assert platform.clock.total == pytest.approx(
            sum(s for __, s in charges)
        )
        assert platform.clock.total == pytest.approx(
            sum(v for __, v in platform.clock)
        )

    @given(hst.lists(hst.floats(min_value=0, max_value=5, allow_nan=False),
                     max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, amounts):
        platform = make_platform()
        previous = 0.0
        for amount in amounts:
            platform.clock.advance(clk.COMPUTE, amount)
            assert platform.clock.total >= previous
            previous = platform.clock.total


class TestSortAdversarialInputs:
    @pytest.mark.parametrize("maker", [
        lambda n: np.zeros(n, dtype=np.int64),
        lambda n: np.arange(n, dtype=np.int64),
        lambda n: np.arange(n, dtype=np.int64)[::-1].copy(),
        lambda n: np.tile(np.array([3, 1, 2], dtype=np.int64), n // 3 + 1)[:n],
        lambda n: np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max] * (n // 2),
                           dtype=np.int64)[:n],
    ], ids=["constant", "sorted", "reversed", "cyclic", "extremes"])
    @pytest.mark.parametrize("method", ["multi_merge", "naive_merge", "xtr2sort"])
    def test_degenerate_distributions(self, maker, method):
        from repro.core import out_of_core_sort

        keys = maker(10_000)
        platform = make_platform()
        out = out_of_core_sort(platform, keys, method=method,
                               segment_len=1_500, p_size=256)
        assert (out == np.sort(keys)).all()
