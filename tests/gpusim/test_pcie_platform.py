"""Tests for the PCIe bus model, platform lifecycle and device spec."""

import numpy as np
import pytest

from repro.gpusim import DEFAULT_COST, DEFAULT_SPEC, GpuPlatform, make_platform
from repro.gpusim import clock as clk
from repro.gpusim import stats as st
from repro.gpusim.spec import CostModel, DeviceSpec


class TestPcie:
    def test_explicit_copy_time(self, platform):
        platform.pcie.explicit_copy(12_000_000)  # 12 MB at 12 GB/s = 1 ms
        assert platform.clock.time_in(clk.PCIE_EXPLICIT) == pytest.approx(1e-3)
        assert platform.counters.get(st.BYTES_H2D) == 12_000_000

    def test_copy_direction_counters(self, platform):
        platform.pcie.explicit_copy(100, to_device=False)
        assert platform.counters.get(st.BYTES_D2H) == 100
        assert platform.counters.get(st.BYTES_H2D) == 0

    def test_migrate_pages(self, platform):
        platform.pcie.migrate_pages(3)
        assert platform.counters.get(st.PAGE_FAULTS) == 3
        assert platform.counters.get(st.BYTES_H2D) == 3 * platform.spec.page_size
        assert platform.clock.time_in(clk.PAGE_FAULT) == pytest.approx(
            3 * platform.cost.page_fault_overhead
        )

    def test_bulk_unified_amortizes_faults(self, platform):
        nbytes = 64 * platform.spec.page_size
        platform.pcie.bulk_unified(nbytes, prefetch_pages=16)
        assert platform.counters.get(st.PAGE_FAULTS) == 4  # 64 pages / 16

    def test_zerocopy_latency_and_bandwidth(self, platform):
        platform.pcie.zerocopy_transactions(1000)
        expected = (
            1000 * platform.spec.zerocopy_line / platform.cost.zerocopy_bandwidth
            + 1000 * platform.cost.zerocopy_latency
        )
        assert platform.clock.time_in(clk.PCIE_ZEROCOPY) == pytest.approx(expected)

    def test_writeback(self, platform):
        platform.pcie.writeback(500)
        assert platform.counters.get(st.BYTES_D2H) == 500

    def test_zero_amounts_free(self, platform):
        platform.pcie.explicit_copy(0)
        platform.pcie.migrate_pages(0)
        platform.pcie.zerocopy_transactions(0)
        platform.pcie.writeback(0)
        platform.pcie.bulk_unified(0)
        assert platform.clock.total == 0.0

    @pytest.mark.parametrize("method,args", [
        ("explicit_copy", (-1,)),
        ("migrate_pages", (-1,)),
        ("zerocopy_transactions", (-1,)),
        ("writeback", (-1,)),
        ("bulk_unified", (-1,)),
    ])
    def test_negative_rejected(self, platform, method, args):
        with pytest.raises(ValueError):
            getattr(platform.pcie, method)(*args)


class TestPlatform:
    def test_reset_clears_clock_and_counters(self, platform):
        platform.pcie.explicit_copy(100)
        platform.reset()
        assert platform.simulated_seconds == 0.0
        assert platform.counters.snapshot() == {}

    def test_make_platform_overrides(self):
        p = make_platform(num_warps=7, device_memory_bytes=12345, cpu_threads=3)
        assert p.kernel.num_warps == 7
        assert p.device.capacity == 12345
        assert p.cpu.threads == 3

    def test_make_platform_custom_cost(self):
        cost = CostModel(pcie_bandwidth=1e9)
        p = make_platform(cost=cost)
        p.pcie.explicit_copy(1_000_000)
        assert p.clock.time_in(clk.PCIE_EXPLICIT) == pytest.approx(1e-3)

    def test_defaults(self):
        p = GpuPlatform()
        assert p.spec is DEFAULT_SPEC
        assert p.cost is DEFAULT_COST


class TestDeviceSpec:
    def test_scaled_memories(self):
        spec = DeviceSpec().scaled(1024)
        assert spec.device_memory_bytes == 16 * (1 << 30) // 1024
        assert spec.host_memory_bytes == 380 * (1 << 30) // 1024

    def test_paper_constants(self):
        """The constants the paper's §II quotes."""
        spec = DeviceSpec()
        assert spec.page_size == 4096
        assert spec.zerocopy_line == 128
        assert spec.warp_size == 32
        assert spec.shared_memory_bytes == 48 * 1024

    def test_throughput_helpers(self):
        cost = CostModel()
        spec = DeviceSpec()
        assert cost.gpu_ops_per_second(spec) == pytest.approx(
            spec.active_warps * 32 * spec.clock_hz * cost.gpu_ipc
        )
        assert cost.cpu_ops_per_second(4) == pytest.approx(
            4 * cost.cpu_ops_per_thread
        )
        assert cost.cpu_ops_per_second() == pytest.approx(
            cost.cpu_threads * cost.cpu_ops_per_thread
        )
