"""Tests for simulated-time accounting and event counters."""

import pytest

from repro.gpusim import ClockSection, Counters, SimClock
from repro.gpusim import clock as clk


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().total == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 1.5)
        clock.advance(clk.COMPUTE, 0.5)
        assert clock.time_in(clk.COMPUTE) == pytest.approx(2.0)

    def test_total_sums_categories(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 1.0)
        clock.advance(clk.PCIE_UNIFIED, 2.0)
        assert clock.total == pytest.approx(3.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(clk.COMPUTE, -1.0)

    def test_zero_advance_creates_no_bucket(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 0.0)
        assert clock.snapshot() == {}

    def test_unknown_category_accepted(self):
        clock = SimClock()
        clock.advance("custom_bucket", 1.0)
        assert clock.time_in("custom_bucket") == 1.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 1.0)
        clock.reset()
        assert clock.total == 0.0

    def test_snapshot_is_a_copy(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 1.0)
        snap = clock.snapshot()
        snap[clk.COMPUTE] = 99.0
        assert clock.time_in(clk.COMPUTE) == 1.0

    def test_iteration_sorted(self):
        clock = SimClock()
        clock.advance("b", 1.0)
        clock.advance("a", 1.0)
        assert [k for k, __ in clock] == ["a", "b"]

    def test_clock_section_measures_delta(self):
        clock = SimClock()
        clock.advance(clk.COMPUTE, 5.0)
        with ClockSection(clock) as section:
            clock.advance(clk.COMPUTE, 2.0)
        assert section.elapsed == pytest.approx(2.0)


class TestCounters:
    def test_default_zero(self):
        assert Counters().get("anything") == 0

    def test_add_accumulates(self):
        counters = Counters()
        counters.add("x", 3)
        counters.add("x")
        assert counters.get("x") == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counters().add("x", -1)

    def test_zero_add_creates_no_entry(self):
        counters = Counters()
        counters.add("x", 0)
        assert counters.snapshot() == {}

    def test_reset(self):
        counters = Counters()
        counters.add("x", 5)
        counters.reset()
        assert counters.get("x") == 0

    def test_iteration_sorted(self):
        counters = Counters()
        counters.add("b", 1)
        counters.add("a", 2)
        assert [k for k, __ in counters] == ["a", "b"]
