"""Tests for warp helpers, kernel launcher and CPU executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.gpusim import (
    WarpGrid,
    make_platform,
    warp_ballot,
    warp_exclusive_scan,
)
from repro.gpusim import clock as clk
from repro.gpusim import stats as st


class TestWarpGrid:
    def test_partition_covers_everything(self):
        grid = WarpGrid(num_warps=4)
        chunks = list(grid.partition(10))
        covered = sorted(i for __, a, b in chunks for i in range(a, b))
        assert covered == list(range(10))

    def test_partition_no_overlap(self):
        grid = WarpGrid(num_warps=3)
        chunks = list(grid.partition(100))
        seen = set()
        for __, a, b in chunks:
            span = set(range(a, b))
            assert not span & seen
            seen |= span

    def test_fewer_tasks_than_warps(self):
        grid = WarpGrid(num_warps=8)
        chunks = list(grid.partition(3))
        assert len(chunks) == 3
        assert all(b - a == 1 for __, a, b in chunks)

    def test_zero_tasks(self):
        assert list(WarpGrid(4).partition(0)) == []

    def test_negative_tasks_rejected(self):
        with pytest.raises(ValueError):
            list(WarpGrid(4).partition(-1))

    def test_uneven_tail_last_chunk_short(self):
        # 10 tasks over 4 warps: ceil-division chunks of 3 leave a 1-task
        # tail for the last active warp.
        chunks = list(WarpGrid(num_warps=4).partition(10))
        assert [b - a for __, a, b in chunks] == [3, 3, 3, 1]
        assert chunks[-1] == (3, 9, 10)

    def test_trailing_warps_skipped_when_chunks_exhaust(self):
        # 12 tasks over 5 warps: chunks of 3 exhaust the range after four
        # warps; the fifth must be skipped, not yielded empty.
        chunks = list(WarpGrid(num_warps=5).partition(12))
        assert len(chunks) == 4
        assert all(b > a for __, a, b in chunks)
        assert chunks[-1][2] == 12

    def test_chunk_bounds_zero_tasks(self):
        # No tasks: the single boundary 0 already spans [0, 0).
        bounds = WarpGrid(4).chunk_bounds(0)
        assert bounds.tolist() == [0]
        assert bounds.dtype == np.int64

    def test_chunk_bounds_fewer_tasks_than_warps(self):
        bounds = WarpGrid(num_warps=8).chunk_bounds(3)
        assert bounds.tolist() == [0, 1, 2, 3]

    def test_chunk_bounds_matches_partition_stops(self):
        grid = WarpGrid(num_warps=6)
        for n in (0, 1, 5, 6, 7, 35, 36, 37):
            expected = [0] + [stop for __, __, stop in grid.partition(n)]
            if expected[-1] != n:
                expected.append(n)
            assert grid.chunk_bounds(n).tolist() == expected

    def test_chunk_bounds_monotone(self):
        grid = WarpGrid(num_warps=5)
        bounds = grid.chunk_bounds(23)
        assert bounds[0] == 0
        assert bounds[-1] == 23
        assert (np.diff(bounds) >= 0).all()

    @given(
        hst.integers(min_value=1, max_value=64),
        hst.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, warps, tasks):
        grid = WarpGrid(warps)
        total = sum(b - a for __, a, b in grid.partition(tasks))
        assert total == tasks


class TestWarpScan:
    def test_exclusive_scan_values(self):
        scan, total = warp_exclusive_scan(np.array([3, 0, 2, 5]))
        assert scan.tolist() == [0, 3, 3, 5]
        assert total == 10

    def test_empty(self):
        scan, total = warp_exclusive_scan(np.array([], dtype=np.int64))
        assert len(scan) == 0
        assert total == 0

    def test_scan_charges_clock_when_given(self):
        platform = make_platform()
        warp_exclusive_scan(
            np.arange(64), platform.clock, platform.spec, platform.cost
        )
        assert platform.clock.time_in(clk.COMPUTE) > 0

    @given(hst.lists(hst.integers(min_value=0, max_value=100), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_scan_matches_cumsum(self, values):
        arr = np.array(values, dtype=np.int64)
        scan, total = warp_exclusive_scan(arr)
        for i in range(len(values)):
            assert scan[i] == sum(values[:i])
        assert total == sum(values)


class TestWarpBallot:
    def test_ballot_packs_bits(self):
        assert warp_ballot(np.array([True, False, True])) == 0b101

    def test_ballot_empty(self):
        assert warp_ballot(np.array([], dtype=bool)) == 0

    def test_ballot_full_warp(self):
        assert warp_ballot(np.ones(32, dtype=bool)) == (1 << 32) - 1

    def test_ballot_oversized_rejected(self):
        with pytest.raises(ValueError):
            warp_ballot(np.ones(33, dtype=bool))


class TestKernelLauncher:
    def test_launch_overhead_always_charged(self):
        platform = make_platform()
        platform.kernel.launch("noop")
        assert platform.clock.time_in(clk.KERNEL_LAUNCH) == pytest.approx(
            platform.cost.kernel_launch_overhead
        )
        assert platform.counters.get(st.KERNEL_LAUNCHES) == 1

    def test_compute_scales_with_warps(self):
        slow = make_platform(num_warps=1)
        fast = make_platform(num_warps=64)
        slow.kernel.launch("k", element_ops=1e6)
        fast.kernel.launch("k", element_ops=1e6)
        ratio = slow.clock.time_in(clk.COMPUTE) / fast.clock.time_in(clk.COMPUTE)
        assert ratio == pytest.approx(64.0)

    def test_serial_steps_do_not_scale_with_warps(self):
        one = make_platform(num_warps=1)
        many = make_platform(num_warps=64)
        one.kernel.launch("k", serial_steps=1e6)
        many.kernel.launch("k", serial_steps=1e6)
        assert one.clock.time_in(clk.COMPUTE) == pytest.approx(
            many.clock.time_in(clk.COMPUTE)
        )

    def test_negative_work_rejected(self):
        platform = make_platform()
        with pytest.raises(ValueError):
            platform.kernel.launch("k", element_ops=-1)

    def test_device_bytes_charged(self):
        platform = make_platform()
        platform.kernel.launch("k", device_bytes=9e8)
        assert platform.clock.time_in(clk.DEVICE_MEM) == pytest.approx(
            9e8 / platform.cost.device_bandwidth
        )


class TestCpuExecutor:
    def test_work_charges_cpu_time(self):
        platform = make_platform(cpu_threads=1)
        platform.cpu.work(platform.cost.cpu_ops_per_thread)
        assert platform.clock.time_in(clk.CPU_COMPUTE) == pytest.approx(1.0)

    def test_threads_speed_up(self):
        single = make_platform(cpu_threads=1)
        multi = make_platform(cpu_threads=32)
        single.cpu.work(1e9)
        multi.cpu.work(1e9)
        ratio = single.clock.total / multi.clock.total
        assert ratio == pytest.approx(32.0)

    def test_gpu_outruns_cpu_single_thread(self):
        """The premise of the paper: massive parallelism beats one core."""
        platform = make_platform()
        assert platform.kernel.ops_per_second > platform.cost.cpu_ops_per_thread
