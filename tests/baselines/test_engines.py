"""Tests for the comparison systems: agreement, crash modes and the cost
relationships the paper's figures rely on."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
    triangle_count,
)
from repro.baselines import GSI, GraphMiner, PangolinGPU, PangolinST, Peregrine
from repro.core import Gamma
from repro.errors import DeviceOutOfMemory
from repro.graph import (
    count_cliques,
    count_isomorphisms,
    from_networkx,
    kronecker,
    relabel_vertices,
    sm_query,
    zipf_labels,
)
from repro.gpusim import make_platform

ALL_ENGINES = [Gamma, PangolinGPU, PangolinST, Peregrine, GSI, GraphMiner]


@pytest.fixture(scope="module")
def medium_graph():
    G = nx.gnm_random_graph(60, 220, seed=31)
    g = from_networkx(G)
    return relabel_vertices(g, zipf_labels(60, 4, seed=7))


class TestAgreement:
    """Every system must compute the same answers — only costs differ."""

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_sm(self, medium_graph, engine_cls):
        oracle = count_isomorphisms(medium_graph, sm_query(1))
        with engine_cls(medium_graph) as engine:
            assert match_pattern(engine, sm_query(1)).embeddings == oracle

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_kcl(self, medium_graph, engine_cls):
        oracle = count_cliques(medium_graph, 4)
        with engine_cls(medium_graph) as engine:
            assert count_kcliques(engine, 4).cliques == oracle

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_fpm(self, medium_graph, engine_cls):
        with Gamma(medium_graph) as reference_engine:
            reference = frequent_pattern_mining(reference_engine, 2, 4).patterns
        with engine_cls(medium_graph) as engine:
            got = frequent_pattern_mining(engine, 2, 4).patterns
        assert got == reference


class TestCrashModes:
    def test_in_core_graph_staging_oom(self):
        """Graphs bigger than device memory kill in-core engines at load."""
        big = kronecker(13, 24, seed=1)  # ~8k vertices, ~190k edges
        platform = make_platform(device_memory_bytes=1 << 20)
        with pytest.raises(DeviceOutOfMemory):
            PangolinGPU(big, platform=platform)

    def test_in_core_embedding_table_oom(self):
        """Graphs that fit still die once intermediate results outgrow the
        device (the paper's Fig. 12/14 crashes)."""
        g = kronecker(9, 12, seed=2)
        platform = make_platform(device_memory_bytes=1 << 19)
        engine = PangolinGPU(g, platform=platform)
        with pytest.raises(DeviceOutOfMemory):
            count_kcliques(engine, 5)

    def test_gamma_survives_same_workload(self):
        g = kronecker(9, 12, seed=2)
        platform = make_platform(device_memory_bytes=1 << 19)
        with Gamma(g, platform=platform) as engine:
            result = count_kcliques(engine, 5)
        assert result.cliques == count_cliques(g, 5)

    def test_cpu_engines_never_oom_on_device(self, medium_graph):
        platform = make_platform(device_memory_bytes=1 << 14)
        engine = Peregrine(medium_graph, platform=platform)
        result = count_kcliques(engine, 4)
        assert result.cliques == count_cliques(medium_graph, 4)


class TestCostShapes:
    def test_pangolin_st_slowest(self):
        """On anything beyond toy size, the single-thread CPU build loses
        (the Fig. 16 normalization baseline)."""
        g = kronecker(10, 10, seed=4)
        times = {}
        for cls in (Gamma, PangolinST, Peregrine):
            with cls(g) as engine:
                count_kcliques(engine, 4)
                times[cls.__name__] = engine.simulated_seconds
        assert times["PangolinST"] > times["Peregrine"]
        assert times["PangolinST"] > times["Gamma"]

    def test_gamma_beats_pangolin_gpu_on_kcl(self):
        """Fig. 12's shape on a mid-size hub-heavy graph."""
        g = kronecker(10, 10, seed=4)
        times = {}
        for cls in (Gamma, PangolinGPU):
            with cls(g) as engine:
                count_kcliques(engine, 4)
                times[cls.__name__] = engine.simulated_seconds
        assert times["Gamma"] < times["PangolinGPU"]

    def test_in_core_beats_gamma_on_tiny_graphs(self, tiny_graph):
        """Fig. 11's EA/ER effect: host-memory preparation dominates."""
        times = {}
        for cls in (Gamma, GSI):
            with cls(tiny_graph) as engine:
                match_pattern(engine, sm_query(1))
                times[cls.__name__] = engine.simulated_seconds
        assert times["GSI"] < times["Gamma"]

    def test_gamma_beats_cpu_on_medium(self):
        g = kronecker(11, 10, seed=6)
        times = {}
        for cls in (Gamma, Peregrine, GraphMiner):
            with cls(g) as engine:
                triangle_count(engine)
                times[cls.__name__] = engine.simulated_seconds
        assert times["Gamma"] < times["Peregrine"]
        assert times["Gamma"] < times["GraphMiner"]

    def test_compaction_lowers_peak_memory(self):
        """Fig. 10's mechanism: embedding-table compression reclaims the
        rows that filtering invalidates."""
        from repro.core import GammaConfig

        g = kronecker(10, 8, seed=8, labels=6)
        peaks = {}
        for compaction in (True, False):
            with Gamma(g, GammaConfig(compaction=compaction)) as engine:
                frequent_pattern_mining(engine, 2, 200)
                peaks[compaction] = engine.peak_host_bytes
        assert peaks[True] < peaks[False]

    def test_prealloc_inflates_device_peak(self):
        """GSI's worst-case preallocation shows up as device-memory peak
        (the 'significant space waste' of §V-B)."""
        g = kronecker(9, 8, seed=8)
        peaks = {}
        for cls in (PangolinGPU, GSI):
            with cls(g) as engine:
                match_pattern(engine, sm_query(1))
                peaks[cls.__name__] = engine.peak_device_bytes
        assert peaks["GSI"] > peaks["PangolinGPU"]
