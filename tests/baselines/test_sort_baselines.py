"""The benchmark-facing sorting comparators (Fig. 19 / Table III).

These are thin named wrappers over :func:`repro.core.sort.out_of_core_sort`;
the tests pin that each wrapper sorts correctly, charges the simulated
clock, and that the cost ordering the figures rely on (multi-merge beats
naive beats nothing, CPU sort loses badly) holds on a small input.
"""

import numpy as np
import pytest

from repro.baselines.sort_baselines import (
    cpu_sort,
    naive_multi_merge_sort,
    xtr2sort,
)
from repro.core.sort import MULTI_MERGE, out_of_core_sort
from repro.gpusim import make_platform


@pytest.fixture
def keys():
    rng = np.random.default_rng(19)
    return rng.integers(-(1 << 62), 1 << 62, 50_000)


class TestWrappersSortCorrectly:
    def test_naive_multi_merge(self, keys):
        platform = make_platform()
        out = naive_multi_merge_sort(platform, keys, segment_len=8_192)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert platform.clock.total > 0

    def test_naive_multi_merge_p_size_passthrough(self, keys):
        base = make_platform()
        naive_multi_merge_sort(base, keys, segment_len=8_192)
        small = make_platform()
        naive_multi_merge_sort(small, keys, segment_len=8_192,
                               p_size=1 << 10)
        # A smaller merge window means more merge rounds: the p_size
        # kwarg must actually reach the sorter.
        assert small.clock.total != base.clock.total

    def test_xtr2sort(self, keys):
        platform = make_platform()
        out = xtr2sort(platform, keys, segment_len=8_192)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert platform.clock.total > 0

    def test_cpu_sort(self, keys):
        platform = make_platform()
        out = cpu_sort(platform, keys)
        np.testing.assert_array_equal(out, np.sort(keys))
        assert platform.clock.total > 0

    def test_default_segment_lengths(self, keys):
        # Every wrapper must run without an explicit segment length.
        for sorter in (naive_multi_merge_sort, xtr2sort):
            platform = make_platform()
            np.testing.assert_array_equal(
                sorter(platform, keys), np.sort(keys))


class TestCostOrdering:
    def test_figure19_ordering_holds(self, keys):
        times = {}
        for name, sorter in (
            ("naive", naive_multi_merge_sort),
            ("xtr2sort", xtr2sort),
            ("cpu", cpu_sort),
        ):
            platform = make_platform()
            if name == "cpu":
                sorter(platform, keys)
            else:
                sorter(platform, keys, segment_len=8_192)
            times[name] = platform.clock.total

        platform = make_platform()
        out_of_core_sort(platform, keys, method=MULTI_MERGE,
                         segment_len=8_192)
        times["multi_merge"] = platform.clock.total

        # Fig. 19: the optimized multi-merge beats both baselines.
        assert times["multi_merge"] < times["naive"]
        assert times["multi_merge"] < times["xtr2sort"]
        # Table III: single-threaded CPU sorting loses by a wide margin.
        assert times["cpu"] > 3 * times["multi_merge"]
