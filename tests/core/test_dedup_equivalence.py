"""Fast-vs-reference equivalence of embedding-set deduplication.

The fast arm of ``dedup_embeddings`` packs each sorted row into a single
int64 key (when the ids fit the overflow bound) and unique-sorts scalars;
the reference arm keeps the void-dtype set-key compare.  Both must keep
the exact same first-occurrence rows — bit-for-bit identical surviving
tables, simulated clocks, and counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.core.aggregation import dedup_embeddings, embedding_set_keys
from repro.core.embedding_table import EDGE, EmbeddingTable
from repro.gpusim import make_platform


def _table_with_rows(platform, rows: np.ndarray) -> EmbeddingTable:
    table = EmbeddingTable(platform, EDGE)
    table.seed(np.ascontiguousarray(rows[:, 0]))
    for col in range(1, rows.shape[1]):
        table.append_column(
            np.ascontiguousarray(rows[:, col]),
            np.arange(len(rows), dtype=np.int64),
        )
    return table


def _dedup_in(mode: str, rows: np.ndarray):
    with perf.pipeline(mode):
        platform = make_platform()
        table = _table_with_rows(platform, rows)
        removed = dedup_embeddings(platform, table)
        return (removed, table.materialize().tolist(),
                platform.clock.snapshot(),
                platform.counters.snapshot(include_zero=True))


@settings(max_examples=60, deadline=None)
@given(
    seed=hst.integers(min_value=0, max_value=2**31 - 1),
    n=hst.integers(min_value=1, max_value=120),
    width=hst.integers(min_value=1, max_value=4),
    id_bound=hst.sampled_from([5, 200, 70_000]),
)
def test_dedup_fast_matches_reference(seed, n, width, id_bound):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, id_bound, size=(n, width), dtype=np.int64)
    fast = _dedup_in(perf.FAST, rows)
    ref = _dedup_in(perf.REFERENCE, rows)
    assert fast == ref


def test_dedup_wide_rows_fall_back_identically():
    """Rows too wide for the int64 packing use the set-key path in both
    arms and still agree."""
    rng = np.random.default_rng(7)
    # 5 columns x 17-bit ids = 85 bits > the 62-bit packing bound.
    rows = rng.integers(0, 100_000, size=(64, 5), dtype=np.int64)
    rows[10] = rows[3][::-1]  # same set, different order -> duplicate
    fast = _dedup_in(perf.FAST, rows)
    ref = _dedup_in(perf.REFERENCE, rows)
    assert fast == ref
    assert fast[0] >= 1


def test_set_keys_order_insensitive():
    rows = np.array([[3, 1, 2], [2, 3, 1], [1, 2, 4]], dtype=np.int64)
    keys = embedding_set_keys(rows)
    assert keys[0] == keys[1]
    assert keys[0] != keys[2]


def test_dedup_keeps_first_occurrence():
    rows = np.array([[5, 9], [9, 5], [2, 7], [7, 2], [5, 9]],
                    dtype=np.int64)
    for mode in (perf.FAST, perf.REFERENCE):
        removed, mats, __, __ = _dedup_in(mode, rows)
        assert removed == 3
        assert mats == [[5, 9], [2, 7]]
