"""Tests for the self-adaptive access-heat planner (paper §IV)."""

import numpy as np
import pytest

from repro.core import HYBRID, UNIFIED_ONLY, ZEROCOPY_ONLY, AccessHeatPlanner
from repro.graph import from_edge_list, star
from repro.gpusim import make_platform


def make_setup(buffer_pages=2, mode=HYBRID):
    """A graph whose hub's adjacency list dominates one page."""
    graph = star(600)  # hub adjacency list = 600 * 8 B > one 4 KB page
    platform = make_platform()
    region = platform.hybrid_region("nbrs", graph.neighbors, buffer_pages)
    planner = AccessHeatPlanner(platform, region, graph.offsets, mode=mode)
    return graph, platform, region, planner


class TestSpatialLocality:
    def test_weight_proportional_to_list_size_and_times(self):
        graph, __, region, planner = make_setup()
        hub = np.array([0, 0, 0])  # hub list accessed three times
        heat = planner.spatial_locality(hub)
        assert heat.sum() > 0
        leaf = planner.spatial_locality(np.array([5]))
        # hub spans its pages with weight 600*3; a leaf contributes 1.
        assert heat.max() > leaf.max()

    def test_empty_access(self):
        __, __, __, planner = make_setup()
        heat = planner.spatial_locality(np.array([], dtype=np.int64))
        assert (heat == 0).all()

    def test_explicit_multiplicities(self):
        __, __, __, planner = make_setup()
        a = planner.spatial_locality(np.array([0, 0]))
        b = planner.spatial_locality(np.array([0]), np.array([2]))
        assert np.allclose(a, b)

    def test_empty_adjacency_lists_ignored(self):
        graph = from_edge_list([(0, 1)], num_vertices=4)
        platform = make_platform()
        region = platform.hybrid_region("nbrs", graph.neighbors, 2)
        planner = AccessHeatPlanner(platform, region, graph.offsets)
        heat = planner.spatial_locality(np.array([2, 3]))  # isolated
        assert (heat == 0).all()


class TestPlanExtension:
    def test_hot_pages_promoted(self):
        __, __, region, planner = make_setup(buffer_pages=1)
        hot = planner.plan_extension(np.array([0, 0, 0, 5]))
        # The hub's heavily re-read pages are routed to unified memory;
        # the chosen set is what the region serves via unified access.
        assert len(hot) >= 1
        assert (region.unified_pages == hot).all()
        # the hub's first page carries the most heat and must be included
        assert 0 in hot.tolist()

    def test_temporal_history_influences_choice(self):
        """A page hot in past extensions stays unified even when the
        current extension touches it lightly (Def. 4.2/4.3)."""
        __, __, region, planner = make_setup(buffer_pages=1)
        for __ in range(5):
            planner.plan_extension(np.array([0] * 10))  # hub dominates history
        hot_before = set(region.unified_pages.tolist())
        # one light extension elsewhere — history should keep hub pages hot
        planner.plan_extension(np.array([5]))
        assert set(region.unified_pages.tolist()) & hot_before

    def test_extension_counter(self):
        __, __, __, planner = make_setup()
        planner.plan_extension(np.array([0]))
        planner.plan_extension(np.array([0]))
        assert planner.extension_index == 2

    def test_unified_only_mode(self):
        __, __, region, planner = make_setup(mode=UNIFIED_ONLY)
        planner.plan_extension(np.array([0]))
        assert len(region.unified_pages) == region.total_pages

    def test_zerocopy_only_mode(self):
        __, __, region, planner = make_setup(mode=ZEROCOPY_ONLY)
        planner.plan_extension(np.array([0]))
        assert len(region.unified_pages) == 0

    def test_invalid_mode_rejected(self):
        graph = star(10)
        platform = make_platform()
        region = platform.hybrid_region("n", graph.neighbors, 2)
        with pytest.raises(ValueError):
            AccessHeatPlanner(platform, region, graph.offsets, mode="wild")


class TestHotOverlap:
    def test_fig5_statistic_recorded(self):
        __, __, __, planner = make_setup()
        planner.plan_extension(np.array([0, 0]))
        planner.plan_extension(np.array([0]))
        planner.plan_extension(np.array([0]))
        assert len(planner.hot_overlap_history) == 2
        # hub pages repeat -> overlap should be perfect here
        assert planner.hot_overlap_history[-1] == pytest.approx(1.0)

    def test_disjoint_accesses_zero_overlap(self):
        graph = from_edge_list(
            [(0, i) for i in range(1, 500)] + [(1000, 1000 + i) for i in range(1, 500)],
            num_vertices=1600,
        )
        platform = make_platform()
        region = platform.hybrid_region("n", graph.neighbors, 2)
        planner = AccessHeatPlanner(platform, region, graph.offsets)
        planner.plan_extension(np.array([0]))
        planner.plan_extension(np.array([1000]))
        assert planner.hot_overlap_history[-1] < 0.5


class TestHybridBeatsSingleModes:
    def test_fig20_shape(self):
        """Mixed hot/cold access: hybrid cheaper than either single mode."""
        graph = star(2000)
        times = {}
        for mode in (HYBRID, UNIFIED_ONLY, ZEROCOPY_ONLY):
            platform = make_platform()
            region = platform.hybrid_region("n", graph.neighbors, 2)
            planner = AccessHeatPlanner(platform, region, graph.offsets, mode=mode)
            rng = np.random.default_rng(0)
            for ext in range(6):
                # hub re-read every time + a few cold leaves
                vertices = np.concatenate([
                    np.zeros(4, dtype=np.int64),
                    rng.integers(1, 2000, 8),
                ])
                planner.plan_extension(vertices)
                starts = graph.offsets[vertices]
                ends = graph.offsets[vertices + 1]
                region.gather_ranges(starts, ends)
            times[mode] = platform.clock.total
        assert times[HYBRID] <= times[UNIFIED_ONLY]
        assert times[HYBRID] <= times[ZEROCOPY_ONLY]
