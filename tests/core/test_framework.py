"""Tests for the Gamma façade and its configuration."""

import numpy as np
import pytest

from repro.core import (
    Gamma,
    GammaConfig,
    HYBRID,
    MinSupport,
    PatternTable,
    UNIFIED_ONLY,
)
from repro.errors import ExecutionError
from repro.gpusim import make_platform


class TestGammaConfig:
    def test_defaults_are_paper_gamma(self):
        cfg = GammaConfig()
        assert cfg.access_mode == HYBRID
        assert cfg.pre_merge is True
        assert cfg.write_strategy == "dynamic"
        assert cfg.compaction is True
        assert cfg.block_bytes == 8 * 1024
        assert cfg.sort_method == "multi_merge"

    def test_invalid_access_mode(self):
        with pytest.raises(ExecutionError):
            GammaConfig(access_mode="warp-speed")

    def test_invalid_strategy(self):
        with pytest.raises(ExecutionError):
            GammaConfig(write_strategy="hope")

    def test_invalid_sort(self):
        with pytest.raises(ExecutionError):
            GammaConfig(sort_method="bogo")

    def test_invalid_fractions(self):
        with pytest.raises(ExecutionError):
            GammaConfig(pool_fraction=0.0)
        with pytest.raises(ExecutionError):
            GammaConfig(buffer_fraction=1.5)

    def test_variant(self):
        cfg = GammaConfig().variant(pre_merge=False, num_warps=4)
        assert cfg.pre_merge is False
        assert cfg.num_warps == 4
        assert cfg.access_mode == HYBRID  # untouched knob


class TestGammaLifecycle:
    def test_context_manager_releases(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            platform = gamma.platform
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            assert platform.device.used > 0
        assert platform.device.used == 0
        assert platform.host_used == 0

    def test_close_idempotent(self, tiny_graph):
        gamma = Gamma(tiny_graph)
        gamma.close()
        gamma.close()

    def test_custom_platform(self, tiny_graph):
        platform = make_platform(num_warps=8)
        with Gamma(tiny_graph, platform=platform) as gamma:
            assert gamma.platform is platform

    def test_vertex_only_workload_skips_edge_regions(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            gamma.vertex_extension(table, [0])
            assert "edge_slots" not in gamma.planners
            # edge use materializes the lazy mapping
            etable = gamma.new_edge_table()
            gamma.seed_edges(etable)
            assert "edge_slots" in gamma.planners

    def test_num_warps_flows_to_kernel(self, tiny_graph):
        with Gamma(tiny_graph, GammaConfig(num_warps=3)) as gamma:
            assert gamma.platform.kernel.num_warps == 3


class TestPrimitivesFacade:
    def test_output_results_table(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            out = gamma.output_results(table=table)
            assert out.shape == (5, 1)

    def test_output_results_both(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_edge_table()
            gamma.seed_edges(table)
            pt = PatternTable()
            gamma.aggregation(table, pt)
            emb, patterns = gamma.output_results(table=table, pattern_table=pt)
            assert len(emb) == tiny_graph.num_edges
            assert patterns

    def test_output_results_nothing_rejected(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            with pytest.raises(ExecutionError):
                gamma.output_results()

    def test_filtering_needs_full_support_args(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_edge_table()
            gamma.seed_edges(table)
            with pytest.raises(ExecutionError):
                gamma.filtering(table, constraint=MinSupport(1))

    def test_filtering_with_mask(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            removed = gamma.filtering(table, keep_mask=np.array([1, 1, 0, 0, 0], bool))
            assert removed == 3
            assert table.num_embeddings == 2

    def test_peak_memory_accounting(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            gamma.vertex_extension(table, [0])
            assert gamma.peak_device_bytes > 0
            assert gamma.peak_host_bytes > 0
            assert gamma.peak_memory_bytes == (
                gamma.peak_device_bytes + gamma.peak_host_bytes
            )

    def test_simulated_time_monotone(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            t0 = gamma.simulated_seconds
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            gamma.vertex_extension(table, [0])
            assert gamma.simulated_seconds > t0


class TestConfigBehaviour:
    def test_access_mode_changes_traffic(self, random_labeled_graph):
        """Unified-only and hybrid route traffic differently."""
        from repro.gpusim import stats as st

        zc = {}
        for mode in (HYBRID, UNIFIED_ONLY, "zerocopy"):
            with Gamma(random_labeled_graph, GammaConfig(access_mode=mode)) as g:
                table = g.new_vertex_table()
                g.seed_vertices(table)
                g.vertex_extension(table, [0])
                zc[mode] = g.platform.counters.get(st.ZC_TRANSACTIONS)
        assert zc[UNIFIED_ONLY] == 0
        assert zc["zerocopy"] > 0
        # the planner promotes hot pages, so hybrid uses at most as much
        # zero-copy traffic as the zero-copy-only baseline
        assert zc[HYBRID] <= zc["zerocopy"]

    def test_no_compaction_config(self, tiny_graph):
        with Gamma(tiny_graph, GammaConfig(compaction=False)) as gamma:
            table = gamma.new_vertex_table()
            gamma.seed_vertices(table)
            used = gamma.platform.host_used
            gamma.filtering(table, keep_mask=np.zeros(5, dtype=bool))
            assert gamma.platform.host_used == used

    def test_results_independent_of_knobs(self, random_labeled_graph):
        """Every configuration produces identical embeddings."""
        outs = []
        for cfg in (
            GammaConfig(),
            GammaConfig(pre_merge=False),
            GammaConfig(write_strategy="two_pass"),
            GammaConfig(access_mode="zerocopy"),
            GammaConfig(sort_method="naive_merge"),
        ):
            with Gamma(random_labeled_graph, cfg) as gamma:
                table = gamma.new_vertex_table()
                gamma.seed_vertices(table)
                gamma.vertex_extension(table, [0])
                gamma.vertex_extension(table, [0, 1])
                outs.append(sorted(map(tuple, table.materialize().tolist())))
        assert all(o == outs[0] for o in outs)
