"""Tests for Optimization 1: the memory pool and write strategies."""

import numpy as np
import pytest

from repro.core import (
    DYNAMIC,
    PREALLOC,
    TWO_PASS,
    DynamicAllocStrategy,
    MemoryPool,
    PreallocStrategy,
    TwoPassStrategy,
    make_write_strategy,
)
from repro.errors import DeviceOutOfMemory, ExecutionError
from repro.gpusim import make_platform
from repro.gpusim import stats as st


@pytest.fixture
def pool(platform):
    return MemoryPool(platform, pool_bytes=1 << 20, block_bytes=8192)


class TestMemoryPool:
    def test_pool_allocates_device_memory(self):
        platform = make_platform()
        before = platform.device.used
        MemoryPool(platform, 1 << 20, 8192)
        assert platform.device.used - before == 1 << 20

    def test_block_accounting(self, platform, pool):
        # one warp writes 20 KB -> 3 blocks, 4 KB wasted tail
        pool.write_extension_results(np.array([20 * 1024]))
        assert pool.blocks_served == 3
        assert pool.wasted_bytes == 3 * 8192 - 20 * 1024
        assert platform.counters.get(st.MEMORY_BLOCKS_ALLOCATED) == 3

    def test_multiple_warps(self, platform, pool):
        pool.write_extension_results(np.array([100, 8192, 8193]))
        assert pool.blocks_served == 1 + 1 + 2

    def test_empty_write_is_free(self, platform, pool):
        t = platform.clock.total
        pool.write_extension_results(np.array([0, 0]))
        assert platform.clock.total == t

    def test_paper_waste_bound(self, platform, pool):
        """Worst-case waste is one partial block per warp (paper: 'hundreds
        of memory blocks might be wasted... can be ignored')."""
        per_warp = np.full(160, 8192 + 1)
        pool.write_extension_results(per_warp)
        assert pool.wasted_bytes <= 160 * 8192

    def test_invalid_block_size_rejected(self, platform):
        with pytest.raises(ExecutionError):
            MemoryPool(platform, 1 << 20, 0)

    def test_pool_smaller_than_block_rejected(self, platform):
        with pytest.raises(ExecutionError):
            MemoryPool(platform, 10, 8192)

    def test_release(self):
        platform = make_platform()
        pool = MemoryPool(platform, 1 << 20, 8192)
        pool.release()
        assert platform.device.used == 0


class TestStrategies:
    def test_factory(self, platform, pool):
        assert isinstance(make_write_strategy(DYNAMIC, platform, pool),
                          DynamicAllocStrategy)
        assert isinstance(make_write_strategy(TWO_PASS, platform),
                          TwoPassStrategy)
        assert isinstance(make_write_strategy(PREALLOC, platform),
                          PreallocStrategy)

    def test_factory_rejects_unknown(self, platform):
        with pytest.raises(ExecutionError):
            make_write_strategy("magic", platform)

    def test_dynamic_requires_pool(self, platform):
        with pytest.raises(ExecutionError):
            make_write_strategy(DYNAMIC, platform, None)

    def test_two_pass_charges_double_compute(self):
        counts = np.array([5, 3, 7])
        single = make_platform()
        double = make_platform()
        pool = MemoryPool(single, 1 << 20, 8192)
        DynamicAllocStrategy(single, pool).account(counts, 16, kernel_ops=1e6)
        TwoPassStrategy(double).account(counts, 16, kernel_ops=1e6)
        assert double.counters.get(st.ELEMENT_OPS) >= 2 * 1e6
        assert single.counters.get(st.ELEMENT_OPS) < 2 * 1e6

    def test_two_pass_declares_two_passes(self, platform):
        assert TwoPassStrategy(platform).passes == 2
        pool = MemoryPool(platform, 1 << 20, 8192)
        assert DynamicAllocStrategy(platform, pool).passes == 1

    def test_prealloc_uses_upper_bound_space(self):
        platform = make_platform()
        strat = PreallocStrategy(platform)
        strat.account(
            np.array([1, 1]), 16, kernel_ops=10,
            upper_bound_counts=np.array([1000, 1000]),
        )
        # allocation was freed, but it must have shown up in the peak
        assert platform.device.peak_for("prealloc") == 2000 * 16

    def test_prealloc_oom_on_huge_bound(self):
        platform = make_platform(device_memory_bytes=1 << 14)
        strat = PreallocStrategy(platform)
        # cap = capacity // 4 = 4096 bytes -> a bound beyond that still fits
        # via the chunk cap; OOM only if even the cap cannot be allocated.
        platform.device.allocate(platform.device.available - 100, "hog")
        with pytest.raises(DeviceOutOfMemory):
            strat.account(
                np.array([1]), 16, kernel_ops=1,
                upper_bound_counts=np.array([10_000_000]),
            )

    def test_dynamic_slower_than_nothing_but_faster_than_two_pass(self):
        """The Fig. 17/18 premise at strategy level: dynamic-alloc beats
        the counting pass for the same logical work."""
        counts = np.arange(1000) % 7
        t = {}
        for name in (DYNAMIC, TWO_PASS):
            platform = make_platform()
            pool = MemoryPool(platform, 1 << 20, 8192) if name == DYNAMIC else None
            make_write_strategy(name, platform, pool).account(
                counts, 16, kernel_ops=5e6
            )
            t[name] = platform.clock.total
        assert t[DYNAMIC] < t[TWO_PASS]
