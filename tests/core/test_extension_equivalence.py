"""Fast-vs-reference equivalence of the fused extension pipeline.

The progressive (compress-as-you-filter) candidate pruning, the adjacency
bitset, and the batched charging underneath must leave no observable trace:
identical embeddings, identical simulated clock buckets, identical counters
— bit-for-bit — against the retained reference implementation, across write
strategies, pre-merge on/off, and constraint combinations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.core import (
    EDGE,
    VERTEX,
    EmbeddingTable,
    ExtensionEngine,
    GammaResidence,
    MemoryPool,
    make_write_strategy,
)
from repro.graph.generators import erdos_renyi, zipf_labels


@hst.composite
def extension_scenarios(draw):
    seed = draw(hst.integers(min_value=0, max_value=2**31 - 1))
    num_vertices = draw(hst.integers(min_value=4, max_value=40))
    num_edges = draw(hst.integers(min_value=3, max_value=120))
    strategy = draw(hst.sampled_from(["dynamic", "two_pass", "prealloc"]))
    pre_merge = draw(hst.booleans())
    steps = draw(hst.integers(min_value=1, max_value=3))
    label = draw(hst.sampled_from([None, 0, 1]))
    use_gt = draw(hst.booleans())
    injective = draw(hst.booleans())
    return (seed, num_vertices, num_edges, strategy, pre_merge, steps,
            label, use_gt, injective)


def _build_engine(graph, strategy, pre_merge):
    from repro.gpusim import make_platform

    platform = make_platform()
    residence = GammaResidence(platform, graph, buffer_pages=8)
    pool = MemoryPool(platform, 1 << 20)
    ws = make_write_strategy(strategy, platform, pool)
    engine = ExtensionEngine(platform, residence, ws, pre_merge=pre_merge)
    return platform, engine


def _run_vertex_walk(graph, strategy, pre_merge, steps, label, use_gt,
                     injective):
    platform, engine = _build_engine(graph, strategy, pre_merge)
    table = EmbeddingTable(platform, VERTEX)
    engine.seed_vertices(table)
    for depth in range(1, steps + 1):
        engine.extend_vertices(
            table,
            anchor_cols=list(range(depth)),
            label=label,
            greater_than_col=depth - 1 if use_gt else None,
            injective=injective,
        )
    rows = table.materialize()
    return rows, platform.clock.snapshot(), platform.counters.snapshot()


def _run_edge_walk(graph, strategy, pre_merge, steps):
    platform, engine = _build_engine(graph, strategy, pre_merge)
    table = EmbeddingTable(platform, EDGE)
    engine.seed_edges(table)
    for __ in range(steps):
        engine.extend_edges(table)
    rows = table.materialize()
    return rows, platform.clock.snapshot(), platform.counters.snapshot()


def _graph_for(seed, num_vertices, num_edges):
    graph = erdos_renyi(num_vertices, num_edges, seed=seed)
    return type(graph)(
        graph.offsets,
        graph.neighbors,
        graph.edge_ids,
        graph.edge_src,
        graph.edge_dst,
        labels=zipf_labels(graph.num_vertices, 3, seed=seed),
        name="equiv",
    )


class TestVertexExtensionEquivalence:
    @given(extension_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_identical_rows_clock_counters(self, scenario):
        (seed, nv, ne, strategy, pre_merge, steps, label, use_gt,
         injective) = scenario
        graph = _graph_for(seed, nv, ne)
        with perf.pipeline(perf.FAST):
            fast = _run_vertex_walk(
                graph, strategy, pre_merge, steps, label, use_gt, injective
            )
        # The adjacency bitset is lazily cached on the graph; a fresh graph
        # for the reference run keeps the pipelines honest either way.
        ref_graph = _graph_for(seed, nv, ne)
        with perf.pipeline(perf.REFERENCE):
            ref = _run_vertex_walk(
                ref_graph, strategy, pre_merge, steps, label, use_gt,
                injective,
            )
        np.testing.assert_array_equal(fast[0], ref[0])
        assert fast[1] == ref[1]  # clock buckets, bit-for-bit
        assert fast[2] == ref[2]  # counters


class TestEdgeExtensionEquivalence:
    @given(extension_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_identical_rows_clock_counters(self, scenario):
        seed, nv, ne, strategy, pre_merge, __, __, __, __ = scenario
        graph = _graph_for(seed, nv, ne)
        with perf.pipeline(perf.FAST):
            fast = _run_edge_walk(graph, strategy, pre_merge, 1)
        ref_graph = _graph_for(seed, nv, ne)
        with perf.pipeline(perf.REFERENCE):
            ref = _run_edge_walk(ref_graph, strategy, pre_merge, 1)
        np.testing.assert_array_equal(fast[0], ref[0])
        assert fast[1] == ref[1]
        assert fast[2] == ref[2]


class TestUnionExtensionEquivalence:
    @given(extension_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_extend_vertices_any(self, scenario):
        (seed, nv, ne, strategy, pre_merge, __, label, use_gt,
         injective) = scenario

        def run(graph):
            platform, engine = _build_engine(graph, strategy, pre_merge)
            table = EmbeddingTable(platform, VERTEX)
            engine.seed_vertices(table)
            engine.extend_vertices(table, anchor_cols=[0], injective=True)
            engine.extend_vertices_any(
                table,
                anchor_cols=[0, 1],
                label=label,
                greater_than_col=1 if use_gt else None,
                injective=injective,
            )
            return (table.materialize(), platform.clock.snapshot(),
                    platform.counters.snapshot())

        with perf.pipeline(perf.FAST):
            fast = run(_graph_for(seed, nv, ne))
        with perf.pipeline(perf.REFERENCE):
            ref = run(_graph_for(seed, nv, ne))
        np.testing.assert_array_equal(fast[0], ref[0])
        assert fast[1] == ref[1]
        assert fast[2] == ref[2]


@pytest.mark.parametrize("dataset,task", [("CL", "sm"), ("CL", "kcl")])
def test_end_to_end_simulated_time_identical(dataset, task):
    """Whole-workload smoke: GAMMA's simulated seconds must not depend on
    the pipeline."""
    from repro.bench.runner import run_task
    from repro.bench.workloads import kcl_task, sm_task

    t = sm_task(1) if task == "sm" else kcl_task(3)
    with perf.pipeline(perf.FAST):
        fast = run_task("GAMMA", dataset, t)
    with perf.pipeline(perf.REFERENCE):
        ref = run_task("GAMMA", dataset, t)
    assert fast.simulated_seconds == ref.simulated_seconds
    assert fast.peak_memory_bytes == ref.peak_memory_bytes
