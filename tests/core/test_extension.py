"""Tests for the extension engine (vertex + edge extension)."""

import numpy as np
import pytest

from repro.core import (
    EDGE,
    VERTEX,
    EmbeddingTable,
    ExtensionEngine,
    GammaResidence,
    HostResidence,
    MemoryPool,
    make_write_strategy,
)
from repro.errors import ExecutionError
from repro.graph import clique_graph, from_edge_list
from repro.gpusim import make_platform
from repro.gpusim import stats as st


def gamma_engine(graph, pre_merge=True, strategy="dynamic"):
    platform = make_platform()
    residence = GammaResidence(platform, graph, buffer_pages=64)
    pool = MemoryPool(platform, 1 << 20) if strategy == "dynamic" else None
    ws = make_write_strategy(strategy, platform, pool)
    return platform, ExtensionEngine(platform, residence, ws, pre_merge=pre_merge)


def cpu_engine(graph):
    platform = make_platform()
    residence = HostResidence(platform, graph)
    return platform, ExtensionEngine(platform, residence, None, cpu=True)


class TestSeeding:
    def test_seed_all_vertices(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        engine.seed_vertices(table)
        assert table.num_embeddings == 5

    def test_seed_label_filtered(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        engine.seed_vertices(table, label=0)
        assert table.materialize().ravel().tolist() == [0, 3]

    def test_seed_edges(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        engine.seed_edges(table)
        assert table.num_embeddings == tiny_graph.num_edges

    def test_seed_kind_mismatch(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        with pytest.raises(ExecutionError):
            engine.seed_vertices(table)
        vtable = EmbeddingTable(platform, VERTEX)
        with pytest.raises(ExecutionError):
            engine.seed_edges(vtable)


class TestVertexExtension:
    def test_neighbors_of_seed(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([2]))
        engine.extend_vertices(table, [0])
        assert sorted(table.materialize()[:, 1].tolist()) == [0, 1, 3]

    def test_multi_anchor_intersection(self, wheel_graph):
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([1]))
        engine.extend_vertices(table, [0])          # neighbors of 1
        engine.extend_vertices(table, [0, 1])       # common neighbors
        mats = table.materialize()
        for row in mats:
            assert wheel_graph.has_edge(int(row[0]), int(row[2]))
            assert wheel_graph.has_edge(int(row[1]), int(row[2]))

    def test_injectivity(self, wheel_graph):
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(6))
        engine.extend_vertices(table, [0])
        engine.extend_vertices(table, [1])  # neighbors of last vertex
        mats = table.materialize()
        for row in mats:
            assert len(set(row.tolist())) == 3

    def test_ordering_constraint(self):
        g = clique_graph(5)
        platform, engine = gamma_engine(g)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(5))
        engine.extend_vertices(table, [0], greater_than_col=0, injective=False)
        mats = table.materialize()
        assert (mats[:, 1] > mats[:, 0]).all()
        assert table.num_embeddings == 10

    def test_label_constraint(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([2]))
        engine.extend_vertices(table, [0], label=0)
        assert sorted(table.materialize()[:, 1].tolist()) == [0, 3]

    def test_bad_anchor_rejected(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([0]))
        with pytest.raises(ExecutionError):
            engine.extend_vertices(table, [1])
        with pytest.raises(ExecutionError):
            engine.extend_vertices(table, [])

    def test_empty_table_extension(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([], dtype=np.int64))
        stats = engine.extend_vertices(table, [0])
        assert stats.rows_out == 0
        assert table.num_embeddings == 0

    def test_wrong_kind_rejected(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        table.seed(np.array([0]))
        with pytest.raises(ExecutionError):
            engine.extend_vertices(table, [0])

    def test_stats_populated(self, wheel_graph):
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(6))
        stats = engine.extend_vertices(table, [0])
        assert stats.rows_in == 6
        assert stats.rows_out == table.num_embeddings
        assert stats.candidates >= stats.rows_out
        assert stats.kernel_ops > 0
        assert stats.per_row_counts.sum() == stats.rows_out

    def test_bfs_output_order(self, wheel_graph):
        """Extension output stays grouped by parent row (BFS layout)."""
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(6))
        engine.extend_vertices(table, [0])
        parents = table.columns[-1].parents
        assert (np.diff(parents) >= 0).all()


class TestModesAgree:
    """pre-merge on/off, all write strategies, CPU vs GPU: identical rows."""

    @pytest.mark.parametrize("strategy", ["dynamic", "two_pass", "prealloc"])
    @pytest.mark.parametrize("pre_merge", [True, False])
    def test_gpu_modes(self, wheel_graph, strategy, pre_merge):
        platform, engine = gamma_engine(wheel_graph, pre_merge, strategy)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(6))
        engine.extend_vertices(table, [0])
        engine.extend_vertices(table, [0, 1])
        reference_platform, reference = gamma_engine(wheel_graph)
        ref_table = EmbeddingTable(reference_platform, VERTEX)
        ref_table.seed(np.arange(6))
        reference.extend_vertices(ref_table, [0])
        reference.extend_vertices(ref_table, [0, 1])
        got = sorted(map(tuple, table.materialize().tolist()))
        expected = sorted(map(tuple, ref_table.materialize().tolist()))
        assert got == expected

    def test_cpu_engine_agrees(self, wheel_graph):
        platform, engine = cpu_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX, charged=False)
        table.seed(np.arange(6))
        engine.extend_vertices(table, [0])
        gpu_platform, gpu = gamma_engine(wheel_graph)
        gpu_table = EmbeddingTable(gpu_platform, VERTEX)
        gpu_table.seed(np.arange(6))
        gpu.extend_vertices(gpu_table, [0])
        assert sorted(map(tuple, table.materialize().tolist())) == sorted(
            map(tuple, gpu_table.materialize().tolist())
        )

    def test_pre_merge_charges_fewer_ops(self):
        """Optimization 2's premise: with two or more shared prefix anchors
        (Fig. 8's case), grouping replaces per-row multi-list intersection
        with one L_m per group."""
        g = clique_graph(12)
        ops = {}
        for pre_merge in (True, False):
            platform, engine = gamma_engine(g, pre_merge)
            table = EmbeddingTable(platform, VERTEX)
            table.seed(np.arange(12))
            engine.extend_vertices(table, [0], greater_than_col=0, injective=False)
            engine.extend_vertices(table, [0, 1], greater_than_col=1, injective=False)
            stats = engine.extend_vertices(
                table, [0, 1, 2], greater_than_col=2, injective=False
            )
            ops[pre_merge] = stats.kernel_ops
        assert ops[True] < ops[False]

    def test_two_pass_doubles_region_reads(self, wheel_graph):
        reads = {}
        for strategy in ("dynamic", "two_pass"):
            platform, engine = gamma_engine(wheel_graph, strategy=strategy)
            table = EmbeddingTable(platform, VERTEX)
            table.seed(np.arange(6))
            before = platform.counters.get(st.ZC_TRANSACTIONS)
            engine.extend_vertices(table, [0])
            reads[strategy] = platform.counters.get(st.ZC_TRANSACTIONS) - before
        assert reads["two_pass"] >= 2 * reads["dynamic"]


class TestEdgeExtension:
    def test_adjacent_edges(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        engine.seed_edges(table)
        engine.extend_edges(table)
        mats = table.materialize()
        for e1, e2 in mats.tolist():
            s1, d1 = tiny_graph.edge_src[e1], tiny_graph.edge_dst[e1]
            s2, d2 = tiny_graph.edge_src[e2], tiny_graph.edge_dst[e2]
            assert {s1, d1} & {s2, d2}  # adjacency
            assert e1 != e2

    def test_no_duplicate_candidate_within_row(self, wheel_graph):
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, EDGE)
        engine.seed_edges(table)
        engine.extend_edges(table)
        mats = table.materialize()
        keys = set(map(tuple, mats.tolist()))
        assert len(keys) == len(mats)  # (parent, new) pairs unique

    def test_wrong_kind_rejected(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([0]))
        with pytest.raises(ExecutionError):
            engine.extend_edges(table)

    def test_empty_edge_table(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        table.seed(np.array([], dtype=np.int64))
        stats = engine.extend_edges(table)
        assert stats.rows_out == 0

    def test_wedge_count(self, tiny_graph):
        """Level-2 dedup gives the exact 2-edge connected subgraph count."""
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        engine.seed_edges(table)
        engine.extend_edges(table)
        sets = {tuple(sorted(row)) for row in table.materialize().tolist()}
        deg = tiny_graph.degrees
        wedges = int((deg * (deg - 1) // 2).sum())
        assert len(sets) == wedges


class TestUnionExtension:
    """extend_vertices_any: Definition 3.1's literal N_v(M)."""

    def test_union_of_neighborhoods(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([0]))
        engine.extend_vertices(table, [0])           # N(0) = {1, 2}
        engine.extend_vertices_any(table, [0, 1])    # N(0) u N(last)
        mats = table.materialize()
        for row in mats:
            u, v, w = int(row[0]), int(row[1]), int(row[2])
            assert tiny_graph.has_edge(u, w) or tiny_graph.has_edge(v, w)

    def test_dedup_within_row(self, wheel_graph):
        """A candidate adjacent to several anchors appears once."""
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([1]))
        engine.extend_vertices(table, [0])
        engine.extend_vertices_any(table, [0, 1])
        mats = table.materialize()
        assert len(set(map(tuple, mats.tolist()))) == len(mats)

    def test_reaches_beyond_intersection(self, tiny_graph):
        """Union extension finds vertices all-anchors intersection misses."""
        platform, engine = gamma_engine(tiny_graph)
        t_all = EmbeddingTable(platform, VERTEX)
        t_all.seed(np.array([0]))
        engine.extend_vertices(t_all, [0])
        engine.extend_vertices(t_all, [0, 1])
        platform2, engine2 = gamma_engine(tiny_graph)
        t_any = EmbeddingTable(platform2, VERTEX)
        t_any.seed(np.array([0]))
        engine2.extend_vertices(t_any, [0])
        engine2.extend_vertices_any(t_any, [0, 1])
        assert t_any.num_embeddings > t_all.num_embeddings

    def test_constraints_apply(self, wheel_graph):
        platform, engine = gamma_engine(wheel_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.arange(6))
        engine.extend_vertices_any(table, [0], greater_than_col=0)
        mats = table.materialize()
        assert (mats[:, 1] > mats[:, 0]).all()

    def test_wrong_kind_rejected(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, EDGE)
        table.seed(np.array([0]))
        with pytest.raises(ExecutionError):
            engine.extend_vertices_any(table, [0])

    def test_empty_table(self, tiny_graph):
        platform, engine = gamma_engine(tiny_graph)
        table = EmbeddingTable(platform, VERTEX)
        table.seed(np.array([], dtype=np.int64))
        stats = engine.extend_vertices_any(table, [0])
        assert stats.rows_out == 0
