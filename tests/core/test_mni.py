"""Tests for MNI (minimum-image-based) support."""

import itertools

import numpy as np
import pytest

from repro.algorithms import frequent_pattern_mining
from repro.core import Gamma, mni_supports
from repro.graph import QuickPatternEncoder, from_edge_list, kronecker, star


class TestMniSupports:
    def test_direct_computation(self):
        # two patterns; pattern A has rows mapping positions to vertices
        codes = np.array([1, 1, 1, 2])
        positions = np.array([
            [10, 20, -1],
            [10, 21, -1],
            [11, 20, -1],
            [30, 31, 32],
        ])
        uniq, mni = mni_supports(codes, positions)
        assert uniq.tolist() == [1, 2]
        # pattern 1: position 0 has {10, 11}=2, position 1 has {20, 21}=2
        assert mni.tolist() == [2, 1]

    def test_empty(self):
        uniq, mni = mni_supports(
            np.empty(0, dtype=np.int64), np.empty((0, 4), dtype=np.int64)
        )
        assert len(uniq) == 0
        assert len(mni) == 0

    def test_mni_bounded_by_instances(self):
        """MNI <= instance count always (each instance contributes at most
        one new vertex per position)."""
        g = kronecker(7, 5, seed=6, labels=3)
        with Gamma(g) as a:
            inst = frequent_pattern_mining(a, 2, 1).patterns
        with Gamma(g) as b:
            mni = frequent_pattern_mining(b, 2, 1, support_metric="mni").patterns
        assert set(mni) == set(inst)
        for code, support in mni.items():
            assert support <= inst[code]


class TestEncoderPositions:
    def test_positions_cover_embedding_vertices(self):
        labels = np.zeros(10, dtype=np.int64)
        enc = QuickPatternEncoder()
        codes, positions = enc.encode_edge_embeddings(
            np.array([[2, 3]]), np.array([[3, 4]]), labels,
            return_positions=True,
        )
        row = positions[0]
        assert set(row[row >= 0].tolist()) == {2, 3, 4}
        assert (row[3:] == -1).all()

    def test_positions_consistent_across_isomorphic_rows(self):
        """Two isomorphic embeddings map to the same canonical positions:
        structurally equivalent vertices land in the same columns."""
        labels = np.zeros(10, dtype=np.int64)
        enc = QuickPatternEncoder()
        # wedges centered at 1 and at 5
        codes, positions = enc.encode_edge_embeddings(
            np.array([[0, 1], [4, 5]]),
            np.array([[1, 2], [5, 6]]),
            labels,
            return_positions=True,
        )
        assert codes[0] == codes[1]
        # The degree-2 center occupies the same canonical position in both.
        center_pos_0 = positions[0].tolist().index(1)
        center_pos_1 = positions[1].tolist().index(5)
        assert center_pos_0 == center_pos_1


class TestMniSemantics:
    def test_star_wedge_mni(self):
        """In a star with n leaves: wedge instances C(n,2) but MNI is
        limited by the single center."""
        n = 6
        with Gamma(star(n)) as engine:
            inst = frequent_pattern_mining(engine, 2, 1).patterns
        with Gamma(star(n)) as engine:
            mni = frequent_pattern_mining(
                engine, 2, 1, support_metric="mni"
            ).patterns
        (wedge_code,) = [c for c, s in inst.items() if s == n * (n - 1) // 2]
        # one center vertex -> MNI = 1
        assert mni[wedge_code] == 1

    def test_mni_matches_brute_force(self):
        """Cross-check MNI against a direct enumeration oracle."""
        g = from_edge_list(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        )
        with Gamma(g) as engine:
            level1 = frequent_pattern_mining(
                engine, 1, 1, support_metric="mni"
            ).patterns
        with Gamma(g) as engine:
            mni = frequent_pattern_mining(
                engine, 2, 1, support_metric="mni"
            ).patterns
        # brute force: all wedges (a-b-c with a<c), MNI over positions
        centers, ends = set(), set()
        for b in range(g.num_vertices):
            nbrs = g.neighbors_of(b).tolist()
            for a, c in itertools.combinations(nbrs, 2):
                centers.add(b)
                ends.update((a, c))
        (wedge_code,) = set(mni) - set(level1)
        assert 1 <= mni[wedge_code] <= min(len(centers), len(ends))

    def test_invalid_metric_rejected(self):
        g = star(4)
        with Gamma(g) as engine:
            table = engine.new_edge_table()
            engine.seed_edges(table)
            from repro.core import PatternTable

            with pytest.raises(ValueError):
                engine.aggregation(
                    table, PatternTable(), support_metric="median"
                )
