"""Tests for Optimization 3: out-of-core sorting (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import (
    CPU_SORT,
    MULTI_MERGE,
    NAIVE_MERGE,
    XTR2SORT,
    device_sort_segments,
    multi_merge,
    out_of_core_sort,
    sort_and_count,
)
from repro.errors import ExecutionError
from repro.gpusim import make_platform
from repro.gpusim import clock as clk


@pytest.fixture
def keys():
    return np.random.default_rng(7).integers(-1 << 40, 1 << 40, 50_000)


class TestSegmentPhase:
    def test_segments_sorted_and_partition_input(self, platform, keys):
        segments = device_sort_segments(platform, keys, 7_000)
        assert sum(len(s) for s in segments) == len(keys)
        for seg in segments:
            assert (np.diff(seg) >= 0).all()

    def test_single_segment(self, platform):
        segs = device_sort_segments(platform, np.array([3, 1, 2]), 100)
        assert len(segs) == 1
        assert segs[0].tolist() == [1, 2, 3]

    def test_invalid_segment_len(self, platform, keys):
        with pytest.raises(ExecutionError):
            device_sort_segments(platform, keys, 0)

    def test_charges_pcie_roundtrip(self, platform, keys):
        device_sort_segments(platform, keys, 10_000)
        assert platform.clock.time_in(clk.PCIE_EXPLICIT) > 0


class TestMultiMerge:
    def test_merges_correctly(self, platform, keys):
        segments = device_sort_segments(platform, keys, 9_000)
        merged = multi_merge(platform, segments, p_size=1024)
        assert (merged == np.sort(keys)).all()

    def test_duplicates_heavy(self, platform):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 5, 10_000)  # massive duplication
        segments = device_sort_segments(platform, keys, 1_500)
        merged = multi_merge(platform, segments, p_size=128)
        assert (merged == np.sort(keys)).all()

    def test_unsorted_segment_rejected(self, platform):
        with pytest.raises(ExecutionError):
            multi_merge(platform, [np.array([3, 1])])

    def test_empty_input(self, platform):
        assert len(multi_merge(platform, [])) == 0
        assert len(multi_merge(platform, [np.array([], dtype=np.int64)])) == 0

    def test_invalid_p_size(self, platform):
        with pytest.raises(ExecutionError):
            multi_merge(platform, [np.array([1])], p_size=0)

    def test_skewed_segments(self, platform):
        """One giant segment + several tiny ones (checkpoint imbalance)."""
        rng = np.random.default_rng(1)
        segs = [np.sort(rng.integers(0, 1000, n)) for n in (5000, 3, 1, 200)]
        merged = multi_merge(platform, segs, p_size=256)
        assert (merged == np.sort(np.concatenate(segs))).all()

    def test_naive_variant_same_output(self, platform, keys):
        segments = device_sort_segments(platform, keys, 9_000)
        merged = multi_merge(platform, segments, p_size=1024,
                             skip_reverse_search=False)
        assert (merged == np.sort(keys)).all()

    @given(
        hst.lists(
            hst.lists(hst.integers(min_value=-100, max_value=100), max_size=60),
            min_size=1, max_size=6,
        ),
        hst.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_property(self, lists, p_size):
        platform = make_platform()
        segments = [np.sort(np.array(lst, dtype=np.int64)) for lst in lists]
        expected = np.sort(np.concatenate(segments)) if any(
            len(s) for s in segments
        ) else np.array([], dtype=np.int64)
        merged = multi_merge(platform, segments, p_size=p_size)
        assert merged.tolist() == expected.tolist()


class TestOutOfCoreSort:
    @pytest.mark.parametrize("method", [MULTI_MERGE, NAIVE_MERGE, XTR2SORT, CPU_SORT])
    def test_all_methods_correct(self, method, keys):
        platform = make_platform()
        out = out_of_core_sort(platform, keys, method=method, segment_len=8_000)
        assert (out == np.sort(keys)).all()

    def test_unknown_method_rejected(self, platform, keys):
        with pytest.raises(ExecutionError):
            out_of_core_sort(platform, keys, method="bogosort")

    def test_default_segment_len_from_device(self, keys):
        platform = make_platform(device_memory_bytes=1 << 16)
        out = out_of_core_sort(platform, keys)
        assert (out == np.sort(keys)).all()

    def test_empty_keys(self, platform):
        out = out_of_core_sort(platform, np.array([], dtype=np.int64))
        assert len(out) == 0

    def test_fig19_ordering(self):
        """The Fig. 19 shape at merge-bound sizes: multi-merge < xtr2sort <
        naive, and the CPU sort far behind (Table III)."""
        big = np.random.default_rng(3).integers(-1 << 60, 1 << 60, 400_000)
        times = {}
        for method in (MULTI_MERGE, NAIVE_MERGE, XTR2SORT, CPU_SORT):
            platform = make_platform()
            out_of_core_sort(platform, big, method=method, segment_len=50_000,
                             p_size=8192)
            times[method] = platform.clock.total
        assert times[MULTI_MERGE] < times[NAIVE_MERGE]
        assert times[MULTI_MERGE] < times[XTR2SORT]
        assert times[CPU_SORT] > 3 * times[MULTI_MERGE]

    def test_input_not_mutated(self, platform, keys):
        copy = keys.copy()
        out_of_core_sort(platform, keys, segment_len=8_000)
        assert (keys == copy).all()


class TestSortAndCount:
    def test_run_length(self, platform):
        uniq, counts = sort_and_count(
            platform, np.array([5, 1, 5, 5, 2, 1]), segment_len=3, p_size=2
        )
        assert uniq.tolist() == [1, 2, 5]
        assert counts.tolist() == [2, 1, 3]

    def test_empty(self, platform):
        uniq, counts = sort_and_count(platform, np.array([], dtype=np.int64))
        assert len(uniq) == 0
        assert len(counts) == 0

    def test_all_same(self, platform):
        uniq, counts = sort_and_count(platform, np.full(100, 7), segment_len=30)
        assert uniq.tolist() == [7]
        assert counts.tolist() == [100]

    @given(hst.lists(hst.integers(min_value=-50, max_value=50), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_unique(self, values):
        platform = make_platform()
        arr = np.array(values, dtype=np.int64)
        uniq, counts = sort_and_count(platform, arr, segment_len=37, p_size=8)
        exp_u, exp_c = np.unique(arr, return_counts=True)
        assert uniq.tolist() == exp_u.tolist()
        assert counts.tolist() == exp_c.tolist()
