"""Tests for the disk-spilling extension tier."""

import numpy as np
import pytest

from repro.algorithms import count_kcliques, frequent_pattern_mining
from repro.core import (
    DISK_IO,
    EmbeddingTable,
    Gamma,
    GammaConfig,
    SpillPolicy,
    SpillStore,
    VERTEX,
)
from repro.errors import HostOutOfMemory
from repro.graph import kronecker
from repro.gpusim import make_platform


class TestSpillStore:
    def test_roundtrip(self, platform, tmp_path):
        with SpillStore(platform, tmp_path) as store:
            data = np.arange(1000).reshape(2, 500)
            handle = store.spill(data)
            back = store.fetch(handle)
            assert (back == data).all()

    def test_charges_disk_time(self, platform, tmp_path):
        with SpillStore(platform, tmp_path) as store:
            store.spill(np.zeros((2, 10_000), dtype=np.int64))
            assert platform.clock.time_in(DISK_IO) > 0

    def test_footprint_tracking(self, platform, tmp_path):
        with SpillStore(platform, tmp_path) as store:
            arr = np.zeros((2, 100), dtype=np.int64)
            h = store.spill(arr)
            assert store.bytes_on_disk == arr.nbytes
            store.discard(h)
            assert store.bytes_on_disk == 0

    def test_discard_idempotent(self, platform, tmp_path):
        with SpillStore(platform, tmp_path) as store:
            h = store.spill(np.zeros((2, 4), dtype=np.int64))
            store.discard(h)
            store.discard(h)

    def test_close_removes_files(self, platform, tmp_path):
        store = SpillStore(platform, tmp_path)
        store.spill(np.zeros((2, 4), dtype=np.int64))
        store.close()
        assert not list(tmp_path.glob("col-*.bin"))


class TestSpillPolicy:
    def test_under_budget_spills_nothing(self):
        policy = SpillPolicy(host_budget_bytes=1000)
        assert policy.columns_to_spill([100, 200], [True, True]) == []

    def test_spills_oldest_first(self):
        policy = SpillPolicy(host_budget_bytes=250, keep_columns=1)
        out = policy.columns_to_spill([100, 100, 100], [True, True, True])
        assert out == [0]

    def test_keep_columns_protects_recent(self):
        policy = SpillPolicy(host_budget_bytes=1, keep_columns=2)
        out = policy.columns_to_spill([100, 100, 100], [True, True, True])
        assert out == [0]  # only the one column outside the keep window

    def test_skips_already_spilled(self):
        policy = SpillPolicy(host_budget_bytes=150, keep_columns=1)
        out = policy.columns_to_spill([100, 100, 100], [False, True, True])
        assert out == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpillPolicy(0)
        with pytest.raises(ValueError):
            SpillPolicy(10, keep_columns=0)


class TestSpilledTable:
    def make_table(self, platform, tmp_path, budget=2000):
        table = EmbeddingTable(platform, VERTEX, "t")
        store = SpillStore(platform, tmp_path)
        table.attach_spill(store, SpillPolicy(budget, keep_columns=1))
        return table, store

    def test_old_columns_spill_and_read_back(self, platform, tmp_path):
        table, store = self.make_table(platform, tmp_path, budget=2000)
        table.seed(np.arange(100))                       # 1600 B
        table.append_column(np.arange(100), np.arange(100))  # over budget
        assert table.spilled_columns == 1
        mats = table.materialize()
        assert (mats[:, 0] == np.arange(100)).all()
        store.close()

    def test_host_usage_reduced(self, tmp_path):
        platform = make_platform()
        table, store = self.make_table(platform, tmp_path, budget=2000)
        table.seed(np.arange(100))
        used_before = platform.host_used
        table.append_column(np.arange(100), np.arange(100))
        # seed column moved to disk: its 1600 B left the host ledger
        assert platform.host_used == used_before
        store.close()

    def test_oversized_column_goes_straight_to_disk(self, tmp_path):
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t")
        store = SpillStore(platform, tmp_path)
        budget = 10_000
        table.attach_spill(store, SpillPolicy(budget, keep_columns=1))
        table.seed(np.arange(10))
        big = np.arange(10_000)
        table.append_column(big, np.zeros(10_000, dtype=np.int64))
        assert table.spilled_columns >= 1
        assert table.num_embeddings == 10_000
        store.close()

    def test_compact_spilled_last_column(self, tmp_path):
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t")
        store = SpillStore(platform, tmp_path)
        table.attach_spill(store, SpillPolicy(4000, keep_columns=1))
        table.seed(np.arange(10))
        table.append_column(np.arange(1000), np.zeros(1000, dtype=np.int64))
        if table.spilled_columns == 0:
            pytest.skip("column fit the budget")
        removed = table.compact(np.arange(1000) < 10)
        assert removed == 990
        assert table.num_embeddings == 10
        store.close()


class TestGammaSpill:
    def test_survives_host_oom_workload(self):
        """The extension's point: a workload whose table exceeds simulated
        host memory completes with spilling enabled."""
        g = kronecker(10, 24, seed=31)  # hub-heavy: huge wedge level
        tiny_host = 1 << 22  # 4 MiB simulated host memory
        from repro.gpusim.spec import DeviceSpec
        from dataclasses import replace
        from repro.gpusim import GpuPlatform

        def make(spill):
            spec = replace(
                DeviceSpec(), host_memory_bytes=tiny_host,
                device_memory_bytes=1 << 21,
            )
            platform = GpuPlatform(spec)
            config = GammaConfig(
                spill_to_disk=spill, spill_budget_bytes=1 << 21,
                write_buffer_bytes=1 << 18,
            )
            return Gamma(g, config, platform=platform)

        with pytest.raises(HostOutOfMemory):
            with make(spill=False) as engine:
                count_kcliques(engine, 4)
        with make(spill=True) as engine:
            result = count_kcliques(engine, 4)
            assert result.cliques > 0
            assert engine.platform.clock.time_in(DISK_IO) > 0

    def test_results_identical_with_and_without_spill(self):
        g = kronecker(8, 6, seed=7, labels=3)
        with Gamma(g) as a:
            plain = frequent_pattern_mining(a, 2, 3).patterns
        with Gamma(g, GammaConfig(spill_to_disk=True,
                                  spill_budget_bytes=1 << 14)) as b:
            spilled = frequent_pattern_mining(b, 2, 3).patterns
        assert plain == spilled

    def test_spill_costs_show_up(self):
        g = kronecker(9, 8, seed=5)
        times = {}
        for spill, budget in ((False, None), (True, 1 << 16)):
            with Gamma(g, GammaConfig(spill_to_disk=spill,
                                      spill_budget_bytes=budget)) as engine:
                count_kcliques(engine, 3)
                times[spill] = engine.simulated_seconds
        assert times[True] > times[False]  # the extra tier is not free


class TestAbortCleanup:
    """Regression: aborted runs must not leak spill temp directories.

    The store's close() used to discard only *tracked* files, so a run
    that died mid-level (leaving a column written just before the fault
    unwound the append) kept its ``gamma-spill-*`` mkdtemp directory
    around forever.  Owned directories are now removed wholesale.
    """

    def test_owned_dir_removed_despite_untracked_files(self, platform):
        import os

        store = SpillStore(platform)  # store-owned mkdtemp directory
        store.spill(np.zeros((2, 8), dtype=np.int64))
        # Simulate a fault unwinding the append after the write landed:
        # the file exists but no handle tracks it.
        stray = os.path.join(store.directory, "col-999.bin")
        with open(stray, "wb") as handle:
            handle.write(b"x" * 64)
        directory = store.directory
        store.close()
        assert not os.path.exists(directory)

    def test_context_manager_abort_removes_owned_dir(self, platform):
        import os

        with pytest.raises(RuntimeError, match="mid-level"):
            with SpillStore(platform) as store:
                store.spill(np.zeros((2, 8), dtype=np.int64))
                directory = store.directory
                raise RuntimeError("mid-level abort")
        assert not os.path.exists(directory)

    def test_caller_owned_dir_survives_close(self, platform, tmp_path):
        store = SpillStore(platform, tmp_path)
        store.spill(np.zeros((2, 8), dtype=np.int64))
        store.close()
        assert tmp_path.exists()  # only the tracked files are discarded
        assert not list(tmp_path.glob("col-*.bin"))

    def test_engine_abort_mid_level_leaves_no_spill_dir(self):
        import os

        from repro.resilience import FaultPlan, FaultSpec

        g = kronecker(9, 8, seed=5)
        engine = Gamma(g, GammaConfig(spill_to_disk=True,
                                      spill_budget_bytes=1 << 16))
        engine.platform.install_fault_plan(FaultPlan(
            name="abort",
            specs=(FaultSpec(kind="device_oom", at="*/level:3"),)))
        from repro.errors import DeviceOutOfMemory
        with pytest.raises(DeviceOutOfMemory):
            count_kcliques(engine, 4)
        store = engine._spill_store
        assert store is not None and store.bytes_spilled > 0
        directory = store.directory
        engine.close()
        assert not os.path.exists(directory)
