"""Tests for the columnar embedding table."""

import numpy as np
import pytest

from repro.core import EDGE, VERTEX, EmbeddingTable
from repro.errors import DeviceOutOfMemory, ExecutionError, HostOutOfMemory
from repro.gpusim import make_platform
from repro.gpusim import stats as st


@pytest.fixture
def table(platform):
    return EmbeddingTable(platform, VERTEX, "t")


class TestShape:
    def test_empty(self, table):
        assert table.depth == 0
        assert table.num_embeddings == 0
        assert table.materialize().shape == (0, 0)

    def test_seed(self, table):
        table.seed(np.array([3, 5, 9]))
        assert table.depth == 1
        assert table.num_embeddings == 3

    def test_double_seed_rejected(self, table):
        table.seed(np.array([1]))
        with pytest.raises(ExecutionError):
            table.seed(np.array([2]))

    def test_append_before_seed_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.append_column(np.array([1]), np.array([0]))

    def test_invalid_kind_rejected(self, platform):
        with pytest.raises(ExecutionError):
            EmbeddingTable(platform, "weird")

    def test_bad_parent_rejected(self, table):
        table.seed(np.array([1, 2]))
        with pytest.raises(ExecutionError):
            table.append_column(np.array([5]), np.array([2]))  # only 2 rows
        with pytest.raises(ExecutionError):
            table.append_column(np.array([5]), np.array([-1]))


class TestMaterialize:
    def test_prefix_tree_sharing(self, table):
        # Two seeds; the first has two children (shared parent cell).
        table.seed(np.array([10, 20]))
        table.append_column(np.array([11, 12, 21]), np.array([0, 0, 1]))
        mats = table.materialize()
        assert mats.tolist() == [[10, 11], [10, 12], [20, 21]]

    def test_three_levels(self, table):
        table.seed(np.array([1]))
        table.append_column(np.array([2, 3]), np.array([0, 0]))
        table.append_column(np.array([4, 5, 6]), np.array([0, 0, 1]))
        mats = table.materialize()
        assert mats.tolist() == [[1, 2, 4], [1, 2, 5], [1, 3, 6]]

    def test_row_subset(self, table):
        table.seed(np.array([1, 2, 3]))
        mats = table.materialize(np.array([2, 0]))
        assert mats.tolist() == [[3], [1]]

    def test_total_cells(self, table):
        table.seed(np.array([1, 2]))
        table.append_column(np.array([5]), np.array([1]))
        assert table.total_cells == 3
        assert table.nbytes == 3 * 16


class TestCompact:
    def test_compact_removes_rows(self, table):
        table.seed(np.array([1, 2, 3, 4]))
        removed = table.compact(np.array([True, False, True, False]))
        assert removed == 2
        assert table.materialize().ravel().tolist() == [1, 3]

    def test_compact_wrong_mask_rejected(self, table):
        table.seed(np.array([1, 2]))
        with pytest.raises(ExecutionError):
            table.compact(np.array([True]))

    def test_compact_empty_table_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.compact(np.array([], dtype=bool))

    def test_compact_reclaims_host_memory(self, platform):
        table = EmbeddingTable(platform, VERTEX, "t")
        table.seed(np.arange(1000))
        used_before = platform.host_used
        table.compact(np.zeros(1000, dtype=bool))
        assert platform.host_used < used_before

    def test_compact_charges_three_stages(self, platform):
        table = EmbeddingTable(platform, VERTEX, "t")
        table.seed(np.arange(64))
        launches_before = platform.counters.get(st.KERNEL_LAUNCHES)
        table.compact(np.ones(64, dtype=bool))
        # mark + collect kernels (scan charges compute directly)
        assert platform.counters.get(st.KERNEL_LAUNCHES) >= launches_before + 2


class TestResidency:
    def test_out_of_core_registers_host_bytes(self, platform):
        table = EmbeddingTable(platform, VERTEX, "t")
        table.seed(np.arange(100))
        assert platform.host_used >= 100 * 16

    def test_out_of_core_flushes_over_pcie(self, platform):
        table = EmbeddingTable(platform, VERTEX, "t")
        table.seed(np.arange(100))
        assert platform.counters.get(st.BYTES_D2H) >= 100 * 16

    def test_device_resident_allocates_per_column(self):
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t", device_resident=True)
        before = platform.device.used
        table.seed(np.arange(10))
        assert platform.device.used == before + 160

    def test_device_resident_oom(self):
        platform = make_platform(device_memory_bytes=1024)
        table = EmbeddingTable(platform, VERTEX, "t", device_resident=True)
        with pytest.raises(DeviceOutOfMemory):
            table.seed(np.arange(100))  # 1600 bytes > 1024

    def test_out_of_core_host_oom(self):
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t")
        too_many = platform.spec.host_memory_bytes // 16 + 1
        with pytest.raises(HostOutOfMemory):
            table.seed(np.zeros(too_many, dtype=np.int64))

    def test_uncharged_table_charges_nothing(self, platform):
        table = EmbeddingTable(platform, VERTEX, "t", charged=False)
        table.seed(np.arange(100))
        table.materialize()
        assert platform.clock.total == 0.0

    def test_release_returns_resources(self):
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t")
        table.seed(np.arange(100))
        table.release()
        assert platform.host_used == 0
        assert platform.device.used == 0

    def test_last_column_served_from_write_buffer(self):
        """Reading the freshly written column costs device bandwidth, not a
        fresh PCIe stream (it is still in the device write buffer)."""
        platform = make_platform()
        table = EmbeddingTable(platform, VERTEX, "t", write_buffer_bytes=1 << 20)
        table.seed(np.arange(1000))
        h2d_before = platform.counters.get(st.BYTES_H2D)
        table.read_column_values(0)
        assert platform.counters.get(st.BYTES_H2D) == h2d_before

    def test_edge_kind(self, platform):
        table = EmbeddingTable(platform, EDGE, "e")
        table.seed(np.array([0, 1]))
        assert table.kind == EDGE
