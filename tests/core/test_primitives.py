"""Tests for the paper-literal Fig. 3 interface: Algorithms 1 and 2
transcribed line by line."""

import numpy as np
import pytest

from repro.core import (
    Constraint,
    Gamma,
    PatternTable,
    aggregation,
    edge_extension,
    filtering,
    output_results,
    vertex_extension,
)
from repro.core.embedding_table import EmbeddingTable
from repro.errors import ExecutionError
from repro.graph import count_isomorphisms, sm_query
from repro.algorithms import frequent_pattern_mining


class TestAlgorithm1:
    """WOJ subgraph matching, written as the paper writes it."""

    def test_woj_transcription(self, random_labeled_graph):
        G_q = sm_query(1)
        delta_v = G_q.matching_order()          # line 1
        position = {qv: i for i, qv in enumerate(delta_v)}

        with Gamma(random_labeled_graph) as gamma:
            ET = gamma.new_vertex_table()
            gamma.seed_vertices(ET, label=G_q.label(delta_v[0]))  # line 2
            for step in range(1, len(delta_v)):                   # line 3
                v = delta_v[step]
                anchors = [position[w] for w in G_q.neighbors(v)
                           if position[w] < step]
                vertex_extension(ET, anchors, label=G_q.label(v))  # line 4
                # line 5: Filtering(ET, Constraint=G_q) — verified on the
                # fully matched table below (extension already pruned).
            removed = filtering(ET, constraint=Constraint(query_graph=G_q))
            result = output_results(table=ET)                      # line 7

        assert removed == 0  # extension-time pruning was already exact
        assert len(result) == count_isomorphisms(random_labeled_graph, G_q)

    def test_query_filter_actually_filters(self, random_labeled_graph):
        """Grow an unconstrained table, then let the Fig. 3 Filtering
        enforce the query graph post hoc — same count as pushdown."""
        G_q = sm_query(1)
        delta_v = G_q.matching_order()
        position = {qv: i for i, qv in enumerate(delta_v)}
        with Gamma(random_labeled_graph) as gamma:
            ET = gamma.new_vertex_table()
            gamma.seed_vertices(ET)
            for step in range(1, len(delta_v)):
                v = delta_v[step]
                anchors = [position[w] for w in G_q.neighbors(v)
                           if position[w] < step]
                vertex_extension(ET, anchors)  # no label pushdown
            filtering(ET, constraint=Constraint(query_graph=G_q))
            count = ET.num_embeddings
        assert count == count_isomorphisms(random_labeled_graph, G_q)


class TestAlgorithm2:
    """FPM, written as the paper writes it."""

    def test_fpm_transcription(self, random_labeled_graph):
        sup_min = 4
        iterations = 2
        with Gamma(random_labeled_graph) as gamma:
            ET = gamma.new_edge_table()
            gamma.seed_edges(ET)                      # line 1
            PT = PatternTable()
            for i in range(1, iterations + 1):        # line 2
                codes = aggregation(ET, PT)           # line 3
                filtering(                            # line 4
                    ET, pattern_table=PT, row_codes=codes,
                    constraint=Constraint(min_support=sup_min),
                )
                if i < iterations:                    # line 5
                    edge_extension(ET)                # line 6
                    gamma.dedup(ET)
            result = output_results(pattern_table=PT)  # line 8

        with Gamma(random_labeled_graph) as gamma:
            reference = frequent_pattern_mining(gamma, iterations, sup_min)
        assert result == reference.patterns

    def test_mni_map_function(self, random_labeled_graph):
        with Gamma(random_labeled_graph) as gamma:
            ET = gamma.new_edge_table()
            gamma.seed_edges(ET)
            PT = PatternTable()
            aggregation(ET, PT, map_function="canonical-mni")
            assert len(PT) > 0


class TestValidation:
    def test_orphan_table_rejected(self, platform):
        table = EmbeddingTable(platform)
        table.seed(np.array([0]))
        with pytest.raises(ExecutionError):
            vertex_extension(table, [0])

    def test_constraint_exactly_one_kind(self):
        with pytest.raises(ExecutionError):
            Constraint()
        with pytest.raises(ExecutionError):
            Constraint(query_graph=sm_query(1), min_support=2)

    def test_unknown_map_function(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            ET = gamma.new_edge_table()
            gamma.seed_edges(ET)
            with pytest.raises(ExecutionError):
                aggregation(ET, PatternTable(), map_function="md5")

    def test_filtering_needs_constraint_or_mask(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            ET = gamma.new_vertex_table()
            gamma.seed_vertices(ET)
            with pytest.raises(ExecutionError):
                filtering(ET)

    def test_output_results_empty(self):
        with pytest.raises(ExecutionError):
            output_results()

    def test_output_pattern_table_alone(self):
        pt = PatternTable()
        pt.merge(np.array([1]), np.array([2]))
        assert output_results(pattern_table=pt) == {1: 2}

    def test_mask_path(self, tiny_graph):
        with Gamma(tiny_graph) as gamma:
            ET = gamma.new_vertex_table()
            gamma.seed_vertices(ET)
            removed = filtering(ET, keep_mask=np.array([1, 0, 0, 0, 0], bool))
            assert removed == 4
