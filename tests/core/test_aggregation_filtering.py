"""Tests for aggregation, pattern table and filtering primitives."""

import numpy as np
import pytest

from repro.core import (
    EDGE,
    EmbeddingTable,
    GammaResidence,
    MinSupport,
    PatternTable,
    aggregate_edge_table,
    dedup_embeddings,
    embedding_set_keys,
    filter_by_support,
    filter_rows,
)
from repro.errors import ExecutionError
from repro.graph import QuickPatternEncoder
from repro.gpusim import make_platform


def edge_table_for(graph, platform=None):
    platform = platform or make_platform()
    residence = GammaResidence(platform, graph, buffer_pages=32)
    table = EmbeddingTable(platform, EDGE)
    table.seed(np.arange(graph.num_edges))
    return platform, residence, table


class TestPatternTable:
    def test_merge_accumulates(self):
        pt = PatternTable()
        pt.merge(np.array([10, 20]), np.array([1, 2]))
        pt.merge(np.array([20, 30]), np.array([3, 4]))
        assert pt.as_dict() == {10: 1, 20: 5, 30: 4}

    def test_merge_rejects_duplicates(self):
        pt = PatternTable()
        with pytest.raises(ValueError):
            pt.merge(np.array([1, 1]), np.array([1, 1]))

    def test_merge_rejects_misaligned(self):
        with pytest.raises(ValueError):
            PatternTable().merge(np.array([1]), np.array([1, 2]))

    def test_support_of(self):
        pt = PatternTable()
        pt.merge(np.array([5, 9]), np.array([3, 7]))
        out = pt.support_of(np.array([9, 5, 11]))
        assert out.tolist() == [7, 3, 0]

    def test_support_of_empty_table(self):
        assert PatternTable().support_of(np.array([1, 2])).tolist() == [0, 0]

    def test_prune_below(self):
        pt = PatternTable()
        pt.merge(np.array([1, 2, 3]), np.array([5, 2, 9]))
        removed = pt.prune_below(5)
        assert removed == 1
        assert pt.as_dict() == {1: 5, 3: 9}

    def test_frequent_returns_copy(self):
        pt = PatternTable()
        pt.merge(np.array([1, 2]), np.array([1, 10]))
        freq = pt.frequent(5)
        assert freq.as_dict() == {2: 10}
        assert len(pt) == 2  # original untouched

    def test_iteration(self):
        pt = PatternTable()
        pt.merge(np.array([4, 2]), np.array([1, 2]))
        assert list(pt) == [(2, 2), (4, 1)]


class TestAggregation:
    def test_length1_patterns_by_label_pair(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        pt = PatternTable()
        encoder = QuickPatternEncoder()
        codes = aggregate_edge_table(
            platform, residence, table, encoder, pt
        )
        assert len(codes) == tiny_graph.num_edges
        # labels [0,2,1,0,2]: edges by endpoint-label multiset:
        # (0,1): {0,2}; (0,2): {0,1}; (1,2): {2,1}; (2,3): {1,0}; (3,4): {0,2}
        assert pt.as_dict() and sum(pt.supports) == 5
        assert sorted(pt.supports.tolist()) == [1, 2, 2]

    def test_symmetric_edges_share_pattern(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        pt = PatternTable()
        codes = aggregate_edge_table(
            platform, residence, table, QuickPatternEncoder(), pt
        )
        # (0,1) labels {0,2} and (3,4) labels {0,2} -> same code, despite
        # opposite orientation in edge storage.
        by_edge = dict(enumerate(codes.tolist()))
        assert by_edge[0] == by_edge[4]

    def test_empty_table(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        table.compact(np.zeros(tiny_graph.num_edges, dtype=bool))
        pt = PatternTable()
        codes = aggregate_edge_table(
            platform, residence, table, QuickPatternEncoder(), pt
        )
        assert len(codes) == 0
        assert len(pt) == 0

    def test_cpu_flag_charges_cpu(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        pt = PatternTable()
        before = platform.clock.time_in("cpu_compute")
        aggregate_edge_table(
            platform, residence, table, QuickPatternEncoder(), pt, cpu=True
        )
        assert platform.clock.time_in("cpu_compute") > before


class TestDedup:
    def test_embedding_set_keys_order_insensitive(self):
        keys = embedding_set_keys(np.array([[3, 1], [1, 3], [1, 2]]))
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_dedup_removes_reordered_duplicates(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        # extend: every adjacent pair appears twice (once from each edge)
        from repro.core import ExtensionEngine, MemoryPool, make_write_strategy

        pool = MemoryPool(platform, 1 << 20)
        engine = ExtensionEngine(
            platform, residence, make_write_strategy("dynamic", platform, pool)
        )
        engine.extend_edges(table)
        n_before = table.num_embeddings
        removed = dedup_embeddings(platform, table)
        assert removed == n_before // 2
        keys = embedding_set_keys(table.materialize())
        assert len(np.unique(keys)) == len(keys)

    def test_dedup_empty(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        table.compact(np.zeros(tiny_graph.num_edges, dtype=bool))
        assert dedup_embeddings(platform, table) == 0


class TestFiltering:
    def test_filter_rows_compacts(self, tiny_graph):
        platform, __, table = edge_table_for(tiny_graph)
        removed = filter_rows(table, np.array([1, 0, 1, 0, 1], dtype=bool))
        assert removed == 2
        assert table.num_embeddings == 3

    def test_filter_rows_no_compaction_keeps_bytes(self, tiny_graph):
        platform, __, table = edge_table_for(tiny_graph)
        used = platform.host_used
        filter_rows(table, np.zeros(5, dtype=bool), compact=False)
        assert table.num_embeddings == 0
        assert platform.host_used == used  # holes not reclaimed

    def test_min_support_validation(self):
        with pytest.raises(ExecutionError):
            MinSupport(0)

    def test_filter_by_support(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        pt = PatternTable()
        codes = aggregate_edge_table(
            platform, residence, table, QuickPatternEncoder(), pt
        )
        removed = filter_by_support(
            platform, table, codes, pt, MinSupport(2)
        )
        assert removed == 1            # the single support-1 edge pattern
        assert table.num_embeddings == 4
        assert (pt.supports >= 2).all()

    def test_filter_by_support_length_mismatch(self, tiny_graph):
        platform, residence, table = edge_table_for(tiny_graph)
        with pytest.raises(ExecutionError):
            filter_by_support(
                platform, table, np.array([1]), PatternTable(), MinSupport(1)
            )
