"""Tests for the three graph-residency placements."""

import numpy as np
import pytest

from repro.core import GammaResidence, HostResidence, InCoreResidence
from repro.errors import DeviceOutOfMemory
from repro.graph import kronecker
from repro.gpusim import make_platform
from repro.gpusim import clock as clk
from repro.gpusim import stats as st


@pytest.fixture
def graph():
    return kronecker(8, 6, seed=1, labels=4)


def residences(graph):
    gamma_platform = make_platform()
    incore_platform = make_platform()
    host_platform = make_platform()
    return (
        GammaResidence(gamma_platform, graph, buffer_pages=16),
        InCoreResidence(incore_platform, graph),
        HostResidence(host_platform, graph),
    )


class TestReadAgreement:
    """All placements return identical data (they differ only in cost)."""

    def test_adjacency(self, graph):
        verts = np.array([0, 5, 17, 5])
        outs = [r.adjacency_of(verts) for r in residences(graph)]
        for values, lengths in outs[1:]:
            assert (values == outs[0][0]).all()
            assert (lengths == outs[0][1]).all()

    def test_incident_edges(self, graph):
        verts = np.array([3, 9])
        outs = [r.incident_edges_of(verts) for r in residences(graph)]
        for values, __ in outs[1:]:
            assert (values == outs[0][0]).all()

    def test_labels_and_degrees(self, graph):
        verts = np.array([1, 2, 3])
        for r in residences(graph):
            assert (r.labels_of(verts) == graph.labels[verts]).all()
            assert (r.degrees_of(verts) == graph.degrees[verts]).all()

    def test_endpoints(self, graph):
        eids = np.array([0, graph.num_edges - 1])
        for r in residences(graph):
            src, dst = r.endpoints_of(eids)
            assert (src == graph.edge_src[eids]).all()
            assert (dst == graph.edge_dst[eids]).all()


class TestGammaResidence:
    def test_lazy_edge_regions(self, graph):
        platform = make_platform()
        res = GammaResidence(platform, graph, buffer_pages=16)
        neighbors_only = platform.host_used
        __ = res.edge_slots  # touch -> registers
        assert platform.host_used > neighbors_only

    def test_structural_arrays_on_device(self, graph):
        platform = make_platform()
        GammaResidence(platform, graph, buffer_pages=16)
        expected = graph.offsets.nbytes + graph.labels.nbytes
        assert platform.device.peak_for("graph:structural") == expected

    def test_adjacency_charges_host_traffic(self, graph):
        platform = make_platform()
        res = GammaResidence(platform, graph, buffer_pages=16)
        platform.clock.reset()
        res.adjacency_of(np.arange(graph.num_vertices))
        pcie = (
            platform.clock.time_in(clk.PCIE_ZEROCOPY)
            + platform.clock.time_in(clk.PCIE_UNIFIED)
        )
        assert pcie > 0

    def test_release_returns_everything(self, graph):
        platform = make_platform()
        res = GammaResidence(platform, graph, buffer_pages=16)
        res.adjacency_of(np.array([0]))
        res.endpoints_of(np.array([0]))  # materialize lazy regions
        __ = res.edge_slots
        res.release()
        assert platform.device.used == 0
        assert platform.host_used == 0


class TestInCoreResidence:
    def test_stages_graph_over_pcie(self, graph):
        platform = make_platform()
        InCoreResidence(platform, graph)
        assert platform.counters.get(st.BYTES_H2D) >= graph.neighbors.nbytes

    def test_oom_on_small_device(self, graph):
        platform = make_platform(device_memory_bytes=1024)
        with pytest.raises(DeviceOutOfMemory):
            InCoreResidence(platform, graph)

    def test_reads_cost_device_bandwidth_only(self, graph):
        platform = make_platform()
        res = InCoreResidence(platform, graph)
        platform.clock.reset()
        res.adjacency_of(np.array([0, 1, 2]))
        assert platform.clock.time_in(clk.DEVICE_MEM) > 0
        assert platform.clock.time_in(clk.PCIE_ZEROCOPY) == 0

    def test_release(self, graph):
        platform = make_platform()
        res = InCoreResidence(platform, graph)
        res.endpoints_of(np.array([0]))
        __ = res.edge_slots
        res.release()
        assert platform.device.used == 0


class TestHostResidence:
    def test_free_of_charge(self, graph):
        platform = make_platform()
        res = HostResidence(platform, graph)
        res.adjacency_of(np.arange(graph.num_vertices))
        res.incident_edges_of(np.array([0]))
        res.endpoints_of(np.array([0]))
        assert platform.clock.total == 0.0
        assert platform.device.used == 0
