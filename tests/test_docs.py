"""Documentation sanity: the deliverable files exist, reference real
modules, and the per-experiment index covers every benchmark target."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDeliverableFiles:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/ARCHITECTURE.md", "docs/COSTMODEL.md", "docs/API.md",
        "docs/LINTING.md", "docs/OBSERVABILITY.md", "docs/SHARDING.md",
        "docs/RESILIENCE.md", "docs/SERVING.md",
    ])
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, f"{name} looks stub-sized"

    def test_design_confirms_paper_match(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "matches the claimed title" in text

    def test_experiments_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Fig. 5", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 14",
                       "Fig. 15", "Fig. 16", "Fig. 17", "Fig. 18", "Fig. 19",
                       "Fig. 20", "Table I", "Table II", "Table III"):
            assert figure in text, figure


class TestDesignModuleReferences:
    def test_referenced_modules_exist(self):
        """Every `module/file.py` mentioned in DESIGN.md must exist."""
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(\w+(?:/\w+)+\.py)(?:::[\w_]+)?`", text):
            rel = match.group(1)
            candidates = [
                ROOT / "src" / "repro" / rel,
                ROOT / rel,
            ]
            assert any(c.exists() for c in candidates), rel

    def test_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`benchmarks/(\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)


class TestBenchmarkCoverage:
    def test_every_figure_has_a_bench_file(self):
        bench_files = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for key in ("fig05", "fig10", "fig11", "fig12", "fig14", "fig15",
                    "fig16", "fig17", "fig18", "fig19", "fig20",
                    "table2", "table3"):
            assert any(key.replace("fig0", "fig0") in name or key in name
                       for name in bench_files), key

    def test_examples_present(self):
        examples = {p.name for p in (ROOT / "examples").glob("*.py")}
        assert len(examples) >= 5
        assert "quickstart.py" in examples
