"""Hypothesis properties for the byte-deterministic checkpoint format.

The archive format promises ``serialize_state(deserialize_state(b)) == b``
for any well-formed archive (no zip timestamps, canonical JSON header,
deterministic array ordering) — that byte determinism is what lets the
crash-matrix suite compare checkpoints directly.  A second battery pins
the partition invariant: a checkpoint's counters are a prefix of the
final totals, exactly like a span's self-time partitions its parent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import count_kcliques
from repro.core.embedding_table import EmbeddingTable
from repro.core.framework import Gamma
from repro.errors import DeviceOutOfMemory
from repro.graph.generators import erdos_renyi
from repro.gpusim import make_platform
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience import runner as res_runner
from repro.resilience.checkpoint import (
    MAGIC,
    CheckpointManager,
    deserialize_state,
    serialize_state,
)

# ---------------------------------------------------------------------------
# Strategies: arbitrary checkpoint-shaped states
# ---------------------------------------------------------------------------

_arrays = hnp.arrays(
    dtype=st.sampled_from([np.int64, np.int32, np.float64, np.uint8,
                           np.bool_]),
    shape=hnp.array_shapes(max_dims=2, max_side=6),
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_values = st.recursive(
    st.one_of(_scalars, _arrays),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)
_states = st.dictionaries(st.text(max_size=8), _values, max_size=5)


def _equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype):
            return False
        # NaNs round-trip bit-exactly but compare unequal to themselves.
        equal_nan = a.dtype.kind == "f"
        return np.array_equal(a, b, equal_nan=equal_nan)
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_equal(a[k], b[k]) for k in a))
    if isinstance(a, list) and isinstance(b, list):
        return (len(a) == len(b)
                and all(_equal(x, y) for x, y in zip(a, b)))
    return type(a) is type(b) and a == b


class TestArchiveRoundTrip:
    @given(_states)
    @settings(max_examples=60, deadline=None)
    def test_reserialization_is_byte_identical(self, state):
        blob = serialize_state(state)
        assert serialize_state(deserialize_state(blob)) == blob

    @given(_states)
    @settings(max_examples=60, deadline=None)
    def test_values_survive_round_trip(self, state):
        assert _equal(deserialize_state(serialize_state(state)), state)

    @given(_states)
    @settings(max_examples=30, deadline=None)
    def test_serialization_is_deterministic(self, state):
        assert serialize_state(state) == serialize_state(state)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            deserialize_state(b"NOTACKPT" + b"\0" * 32)

    def test_trailing_bytes_rejected(self):
        blob = serialize_state({"a": 1})
        with pytest.raises(ValueError, match="trailing"):
            deserialize_state(blob + b"\0")

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="keys must be str"):
            serialize_state({"outer": {3: "x"}})

    def test_magic_prefix(self):
        assert serialize_state({}).startswith(MAGIC)


class TestEmbeddingTableStates:
    @given(st.lists(st.integers(min_value=0, max_value=40),
                    min_size=0, max_size=5),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_et_state_round_trip(self, lengths, seed):
        """Arbitrary ET contents: snapshot -> archive -> restore into a
        fresh table -> re-snapshot serializes to identical bytes."""
        rng = np.random.default_rng(seed)
        records = [
            {
                "values": rng.integers(0, 1 << 40, size=n, dtype=np.int64),
                "parents": rng.integers(0, max(1, n), size=n,
                                        dtype=np.int64),
                "spilled": False,
            }
            for n in lengths
        ]
        source = EmbeddingTable(make_platform(), name="src")
        source.restore_columns(records)
        blob = serialize_state({"columns": source.snapshot_columns()})

        target = EmbeddingTable(make_platform(), name="dst")
        target.restore_columns(deserialize_state(blob)["columns"])
        assert serialize_state(
            {"columns": target.snapshot_columns()}) == blob
        assert target.num_embeddings == source.num_embeddings


class TestEngineStates:
    def test_captured_engine_state_round_trips(self, tmp_path):
        """A real mid-run engine snapshot survives the archive and the
        on-disk manager byte-for-byte."""
        engine = Gamma(erdos_renyi(120, 900, seed=2))
        engine.enable_checkpointing()
        count_kcliques(engine, 3)
        state = res_runner.capture_state(engine)
        engine.close()

        blob = serialize_state(state)
        assert serialize_state(deserialize_state(blob)) == blob

        manager = CheckpointManager(str(tmp_path / "ckpt"))
        manager.save(state)
        loaded = manager.load()
        assert serialize_state(loaded) == blob
        manager.clear()
        assert manager.load() is None


class TestCounterPartition:
    def test_resumed_counters_partition_final_totals(self, tmp_path):
        """The checkpoint splits every counter into before/after: the
        checkpointed value is a prefix of the resumed run's final total,
        and the total matches the uninterrupted run exactly — the same
        self-delta discipline obs spans keep with their parents."""
        graph_args = dict(num_vertices=300, num_edges=3600, seed=3)
        ckpt = tmp_path / "ckpt"

        engine = Gamma(erdos_renyi(**graph_args))
        engine.platform.install_fault_plan(FaultPlan(
            name="crash",
            specs=(FaultSpec(kind="device_oom", at="*/level:3"),)))
        with pytest.raises(DeviceOutOfMemory):
            engine.run(lambda e: count_kcliques(e, 4), checkpoint_dir=ckpt)
        engine.close()

        at_checkpoint = CheckpointManager(str(ckpt)).load()["counters"]

        resumed = Gamma(erdos_renyi(**graph_args))
        resumed.run(lambda e: count_kcliques(e, 4),
                    checkpoint_dir=ckpt, resume=True)
        final = resumed.platform.counters.snapshot(include_zero=True)
        resumed.close()

        reference = Gamma(erdos_renyi(**graph_args))
        count_kcliques(reference, 4)
        uninterrupted = reference.platform.counters.snapshot(
            include_zero=True)
        reference.close()

        assert final == uninterrupted
        assert set(at_checkpoint) <= set(final)
        assert all(at_checkpoint[name] <= final[name]
                   for name in at_checkpoint)
        # The crash hit mid-run, so the post-resume leg did real work.
        assert any(at_checkpoint[name] < final[name]
                   for name in at_checkpoint)
