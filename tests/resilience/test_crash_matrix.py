"""Crash-matrix differential suite: faulted-then-resumed == uninterrupted.

Each matrix cell is (workload x fault kind x injection level).  One run
proceeds uninterrupted; a second runs under a deterministic fault plan
until the injected fault kills it, then a *fresh* engine resumes from the
on-disk checkpoint and finishes the same driver.  The resumed run must
reproduce the uninterrupted run's results, simulated-clock buckets, and
counter totals bit-for-bit — checkpointing is uncharged bookkeeping, so
any drift is a real accounting bug.

A second battery sweeps the graceful-degradation ladder: each policy must
complete a workload that *genuinely* dies with an out-of-memory fault
(no injection — the simulated device/host really is too small), matching
the result computed under a roomy configuration.
"""

import pytest

from repro.algorithms import count_kcliques, frequent_pattern_mining
from repro.core.framework import Gamma, GammaConfig
from repro.errors import (
    DeviceOutOfMemory,
    GammaError,
    HostOutOfMemory,
    MemoryPoolExhausted,
    SpillIOError,
)
from repro.graph.generators import erdos_renyi
from repro.gpusim import make_platform
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import BACKOFF_CATEGORY, STALL_CATEGORY

# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _kcl_engine():
    return Gamma(erdos_renyi(300, 3600, seed=3))


def _kcl_task(engine):
    return count_kcliques(engine, 4)


def _kcl_signature(result):
    return ("kcl", result.k, result.cliques)


def _fpm_engine():
    return Gamma(erdos_renyi(120, 700, seed=5, labels=3))


def _fpm_task(engine):
    return frequent_pattern_mining(engine, iterations=3, min_support=4)


def _fpm_signature(result):
    return ("fpm", sorted(result.patterns.items()),
            result.frequent_per_level)


WORKLOADS = {
    "kcl4": (_kcl_engine, _kcl_task, _kcl_signature),
    "fpm3": (_fpm_engine, _fpm_task, _fpm_signature),
}

#: (cell id, workload, one-shot fault spec).  Paths follow the span
#: hierarchy: phases wrap levels, io sites hang off both.
MATRIX = [
    ("kcl4-device-oom-level3", "kcl4",
     FaultSpec(kind="device_oom", at="*/level:3")),
    ("kcl4-pool-exhausted-level2", "kcl4",
     FaultSpec(kind="pool_exhausted", at="*/level:2")),
    ("kcl4-spill-io-extension", "kcl4",
     FaultSpec(kind="spill_io", at="*/phase:vertex-extension", after=2)),
    ("fpm3-host-oom-aggregation", "fpm3",
     FaultSpec(kind="host_oom", at="*/phase:aggregation", after=1)),
    ("fpm3-device-oom-level2", "fpm3",
     FaultSpec(kind="device_oom", at="*/level:2")),
]


def _accounting(engine):
    return (engine.platform.clock.snapshot(),
            engine.platform.counters.snapshot(include_zero=True))


def _uninterrupted(workload):
    make_engine, task, signature = WORKLOADS[workload]
    engine = make_engine()
    try:
        result = task(engine)
        return signature(result), _accounting(engine)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Fault-then-resume differential
# ---------------------------------------------------------------------------


class TestCrashMatrix:
    @pytest.mark.parametrize(
        "workload,spec", [(w, s) for __, w, s in MATRIX],
        ids=[cell for cell, __, ___ in MATRIX])
    def test_fault_then_resume_bit_identical(self, tmp_path, workload, spec):
        make_engine, task, signature = WORKLOADS[workload]
        ckpt = tmp_path / "ckpt"

        # Leg 1: the fault plan kills the run mid-workload.
        crashed = make_engine()
        crashed.platform.install_fault_plan(
            FaultPlan(name="matrix", specs=(spec,)))
        with pytest.raises(GammaError):
            crashed.run(task, checkpoint_dir=ckpt)
        assert any(e["type"] == "fault-injected"
                   for e in crashed.platform.resilience_log)
        crashed.close()
        assert (ckpt / "checkpoint.bin").exists()

        # Leg 2: a fresh engine (no plan — the pressure was transient)
        # resumes from disk and finishes the same driver.
        resumed = make_engine()
        result = resumed.run(task, checkpoint_dir=ckpt, resume=True)
        resumed_sig = signature(result)
        resumed_acct = _accounting(resumed)
        # The killing fault fired *after* the last completed op, so it is
        # not part of the checkpointed timeline: the resumed log restarts
        # from the (pre-fault) checkpoint state.
        assert not any(e["type"] == "fault-injected"
                       for e in resumed.platform.resilience_log)
        resumed.close()

        ref_sig, ref_acct = _uninterrupted(workload)
        assert resumed_sig == ref_sig
        assert resumed_acct[0] == ref_acct[0]  # clock buckets, bit-for-bit
        assert resumed_acct[1] == ref_acct[1]  # counters, bit-for-bit

    def test_injected_fault_types_match_kind(self):
        """Each raising fault kind surfaces as its modelled error class."""
        expected = {
            "device_oom": DeviceOutOfMemory,
            "host_oom": HostOutOfMemory,
            "pool_exhausted": MemoryPoolExhausted,
            "spill_io": SpillIOError,
        }
        for kind, error in expected.items():
            engine = _kcl_engine()
            engine.platform.install_fault_plan(FaultPlan(
                name="kind", specs=(FaultSpec(kind=kind, at="*/level:*"),)))
            with pytest.raises(error):
                _kcl_task(engine)
            engine.close()

    def test_stall_bursts_are_deterministic_and_charged(self):
        """pcie_stall is non-fatal: it charges the stall category the same
        way on every run of the same plan."""
        plan = FaultPlan(
            name="stalls", seed=99,
            specs=(FaultSpec(kind="pcie_stall", at="*/level:*", count=0),))
        snapshots = []
        for __ in range(2):
            engine = _kcl_engine()
            engine.platform.install_fault_plan(plan)
            result = _kcl_task(engine)
            snapshots.append((result.cliques,
                              engine.platform.clock.snapshot()))
            assert engine.platform.clock.time_in(STALL_CATEGORY) > 0
            engine.close()
        assert snapshots[0] == snapshots[1]

    def test_resume_requires_same_workload(self, tmp_path):
        """Replaying a checkpoint under a different driver is an error, not
        silent corruption."""
        ckpt = tmp_path / "ckpt"
        engine = _kcl_engine()
        engine.platform.install_fault_plan(FaultPlan(
            name="crash",
            specs=(FaultSpec(kind="device_oom", at="*/level:3"),)))
        with pytest.raises(DeviceOutOfMemory):
            engine.run(_kcl_task, checkpoint_dir=ckpt)
        engine.close()

        resumed = _kcl_engine()
        with pytest.raises(GammaError, match="resume mismatch"):
            resumed.run(_fpm_task, checkpoint_dir=ckpt, resume=True)
        resumed.close()


# ---------------------------------------------------------------------------
# Degradation-policy recoveries (genuine OOM, no injection)
# ---------------------------------------------------------------------------

#: Prealloc on a 1 MiB device with a large page buffer: the per-chunk
#: extension allocation cannot fit, so kCL-4 genuinely dies mid-level.
_TIGHT_DEVICE = GammaConfig(write_strategy="prealloc",
                            device_memory_bytes=1 << 20,
                            buffer_fraction=0.7)


def _oom_graph():
    return erdos_renyi(2000, 40000, seed=11)


@pytest.fixture(scope="module")
def reference_cliques():
    """kCL-4 count under a roomy default configuration."""
    engine = Gamma(_oom_graph())
    try:
        return count_kcliques(engine, 4).cliques
    finally:
        engine.close()


class TestDegradationPolicies:
    def test_tight_device_genuinely_dies(self):
        engine = Gamma(_oom_graph(), _TIGHT_DEVICE)
        with pytest.raises(DeviceOutOfMemory):
            count_kcliques(engine, 4)
        engine.close()

    def test_tight_host_genuinely_dies(self):
        engine = Gamma(_oom_graph(),
                       platform=make_platform(host_memory_bytes=1 << 21))
        with pytest.raises(HostOutOfMemory):
            count_kcliques(engine, 4)
        engine.close()

    @pytest.mark.parametrize("policy", ["halve-chunk", "demote-pages"])
    def test_policy_recovers_device_oom(self, policy, reference_cliques):
        engine = Gamma(_oom_graph(), _TIGHT_DEVICE)
        result = engine.run(lambda e: count_kcliques(e, 4), policy=policy)
        events = [e for e in engine.platform.resilience_log
                  if e["type"] == "degradation"]
        backoff = engine.platform.clock.time_in(BACKOFF_CATEGORY)
        engine.close()
        assert result.cliques == reference_cliques
        assert events and all(e["policy"] == policy for e in events)
        assert all(e["error"] == "DeviceOutOfMemory" for e in events)
        assert backoff > 0  # simulated recovery cost is charged

    def test_spill_policy_recovers_host_oom(self, reference_cliques):
        engine = Gamma(_oom_graph(),
                       platform=make_platform(host_memory_bytes=1 << 21))
        result = engine.run(lambda e: count_kcliques(e, 4), policy="spill")
        events = [e for e in engine.platform.resilience_log
                  if e["type"] == "degradation"]
        spilled = engine._spill_store.bytes_spilled
        engine.close()
        assert result.cliques == reference_cliques
        assert events and all(e["policy"] == "spill" for e in events)
        assert spilled > 0  # the disk tier actually engaged

    def test_without_policy_fault_propagates(self):
        engine = Gamma(_oom_graph(), _TIGHT_DEVICE)
        with pytest.raises(DeviceOutOfMemory):
            engine.run(lambda e: count_kcliques(e, 4))
        engine.close()

    def test_bounded_retries(self):
        """A policy that never helps exhausts max_retries and re-raises."""

        class Useless:
            name = "useless"

            def apply(self, gamma, exc, attempt):
                return {"action": "noop"}

        engine = Gamma(_oom_graph(), _TIGHT_DEVICE)
        with pytest.raises(DeviceOutOfMemory):
            engine.run(lambda e: count_kcliques(e, 4),
                       policy=Useless(), max_retries=2)
        attempts = [e["attempt"] for e in engine.platform.resilience_log
                    if e["type"] == "degradation"]
        engine.close()
        assert attempts == [1, 2]
