"""Pipeline-selection plumbing in :mod:`repro.perf`."""

import warnings

import pytest

from repro import perf


def test_env_parsing_accepts_known_modes(monkeypatch):
    monkeypatch.setattr(perf, "_warned_unknown", False)
    monkeypatch.setenv("REPRO_PIPELINE", "reference")
    assert perf._mode_from_env() == perf.REFERENCE
    monkeypatch.setenv("REPRO_PIPELINE", "FAST")
    assert perf._mode_from_env() == perf.FAST
    monkeypatch.delenv("REPRO_PIPELINE")
    assert perf._mode_from_env() == perf.FAST


def test_unknown_pipeline_warns_once_per_process(monkeypatch):
    monkeypatch.setattr(perf, "_warned_unknown", False)
    monkeypatch.setenv("REPRO_PIPELINE", "bogus")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert perf._mode_from_env() == perf.FAST
        assert perf._mode_from_env() == perf.FAST
        assert perf._mode_from_env() == perf.FAST
    ours = [w for w in caught if "REPRO_PIPELINE" in str(w.message)]
    assert len(ours) == 1
    assert "'bogus'" in str(ours[0].message)


def test_unknown_pipeline_warning_rearms_only_explicitly(monkeypatch):
    monkeypatch.setenv("REPRO_PIPELINE", "nope")
    monkeypatch.setattr(perf, "_warned_unknown", True)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert perf._mode_from_env() == perf.FAST
    assert [w for w in caught if "REPRO_PIPELINE" in str(w.message)] == []


def test_set_pipeline_rejects_unknown():
    with pytest.raises(ValueError):
        perf.set_pipeline("bogus")
