"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


class TestDatasetsCommand:
    def test_prints_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cit-Patent" in out
        assert "twitter_rv" in out


class TestSystemsCommand:
    def test_lists_all_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("GAMMA", "Pangolin-GPU", "Peregrine", "GSI"):
            assert name in out


class TestRunCommand:
    def test_sm(self, capsys):
        code = main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--system", "GAMMA"])
        assert code == 0
        out = capsys.readouterr().out
        assert "embeddings" in out
        assert "simulated time" in out

    def test_sm_symmetry_breaking(self, capsys):
        code = main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--symmetry-breaking"])
        assert code == 0

    def test_kcl(self, capsys):
        assert main(["run", "--task", "kcl", "--k", "3",
                     "--dataset", "ER"]) == 0
        assert "3-cliques" in capsys.readouterr().out

    def test_triangles_on_baseline(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--system", "Peregrine"]) == 0

    def test_fpm_with_catalog_names(self, capsys):
        assert main(["run", "--task", "fpm", "--dataset", "ER",
                     "--min-support", "3"]) == 0
        out = capsys.readouterr().out
        assert "edge[" in out or "wedge[" in out or "edge" in out

    def test_fpm_mni(self, capsys):
        assert main(["run", "--task", "fpm", "--dataset", "ER",
                     "--min-support", "2", "--metric", "mni"]) == 0

    def test_motifs(self, capsys):
        assert main(["run", "--task", "motifs", "--edges", "2",
                     "--dataset", "ER"]) == 0
        assert "instances" in capsys.readouterr().out

    def test_crash_returns_nonzero(self, capsys):
        code = main(["run", "--task", "kcl", "--k", "4",
                     "--dataset", "CL", "--system", "Pangolin-GPU"])
        assert code == 1
        assert "CRASH" in capsys.readouterr().out

    def test_unknown_system(self, capsys):
        code = main(["run", "--task", "sm", "--system", "HAL9000",
                     "--dataset", "ER"])
        assert code == 2

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--task", "alchemy"])


class TestFigureCommand:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestGraphletsCommand:
    def test_graphlets(self, capsys):
        assert main(["run", "--task", "graphlets", "--k", "3",
                     "--dataset", "ER"]) == 0
        out = capsys.readouterr().out
        assert "graphlets" in out
        assert "induced occurrences" in out

    def test_breakdown_flag(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "where the time went" in out
        assert "compute" in out


class TestObservabilityFlags:
    def test_profile_flag(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock profile" in out
        assert "where the time went" in out  # --profile implies the breakdown
        for phase in ("load-dataset", "build-engine", "run-task", "total"):
            assert phase in out

    def test_trace_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["run", "--task", "kcl", "--k", "3", "--dataset", "ER",
                     "--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert events, "trace has no complete events"
        names = {e["name"] for e in events}
        assert "run" in names
        # run -> phase -> level -> kernel: at least three span kinds deep.
        kinds = {e["args"]["kind"] for e in events}
        assert {"run", "phase", "kernel"} <= kinds
        assert "trace written to" in capsys.readouterr().out

    def test_metrics_out_is_json_lines(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.jsonl"
        assert main(["run", "--task", "kcl", "--k", "3", "--dataset", "ER",
                     "--metrics-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        samples = [json.loads(line) for line in lines]
        assert all({"name", "value"} <= set(s) for s in samples)
        assert any(s["name"] == "extension.rows_out" for s in samples)

    def test_manifest_out_and_report(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["run", "--task", "kcl", "--k", "3", "--dataset", "ER",
                     "--manifest-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dataset=ER" in out
        assert "task=kcl" in out
        assert "counters:" in out
        assert "simulated time" in out

    def test_report_against_identical_passes(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--manifest-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path), "--against", str(path)]) == 0
        assert "no differences beyond thresholds" in capsys.readouterr().out

    def test_report_against_regressed_fails(self, capsys, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--manifest-out", str(path)]) == 0
        manifest = json.loads(path.read_text())
        manifest["counters"]["page_faults"] = (
            manifest["counters"].get("page_faults", 0) * 2 + 1000
        )
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(manifest))
        capsys.readouterr()
        assert main(["report", str(worse), "--against", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_crash_path_detaches_collector(self, capsys, tmp_path):
        from repro import obs

        path = tmp_path / "trace.json"
        code = main(["run", "--task", "kcl", "--k", "4", "--dataset", "CL",
                     "--system", "Pangolin-GPU", "--trace-out", str(path)])
        assert code == 1
        # The collector must not linger as the process default after a
        # crash, or it would silently adopt the next platform constructed.
        assert obs.spans._default_collector() is None


class TestProfilingFlags:
    def test_critical_path_flag(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path (simulated time):" in out
        assert "hot subtrees" in out

    def test_history_dir_appends_records(self, capsys, tmp_path):
        from repro.obs.profile import HistoryStore

        history = tmp_path / "history"
        for __ in range(2):
            assert main(["run", "--task", "triangles", "--dataset", "ER",
                         "--history-dir", str(history)]) == 0
        assert "perf history: appended seq" in capsys.readouterr().out
        with HistoryStore(history) as store:
            assert len(store) == 2
            latest = store.latest("cli", "triangles-ER", arm="GAMMA")
            assert latest["simulated_seconds"] > 0
            assert latest["span_tree"], "span tree not persisted"


class TestPerfReportCommand:
    def _populate(self, history, runs=4):
        for __ in range(runs):
            assert main(["run", "--task", "triangles", "--dataset", "ER",
                         "--history-dir", str(history)]) == 0

    def test_no_history_exits_two(self, capsys, tmp_path):
        assert main(["perf-report",
                     "--history", str(tmp_path / "nope")]) == 2
        assert "no perf history" in capsys.readouterr().err

    def test_no_history_warn_only_exits_zero(self, tmp_path):
        assert main(["perf-report", "--history", str(tmp_path / "nope"),
                     "--warn-only"]) == 0

    def test_clean_history_passes(self, capsys, tmp_path):
        import json

        history = tmp_path / "history"
        self._populate(history)
        capsys.readouterr()
        json_out = tmp_path / "verdicts.json"
        assert main(["perf-report", "--history", str(history),
                     "--json", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        verdicts = json.loads(json_out.read_text())
        assert verdicts and not any(v["flagged"] for v in verdicts)
        assert all(v["schema"] == "gamma-perf-verdict/1" for v in verdicts)

    def test_cell_filters_select_nothing(self, tmp_path):
        history = tmp_path / "history"
        self._populate(history, runs=1)
        assert main(["perf-report", "--history", str(history),
                     "--bench", "not-a-bench"]) == 2


class TestShardedRun:
    def test_gpus_flag_runs_sharded(self, capsys):
        assert main(["run", "--task", "kcl", "--k", "3", "--dataset", "ER",
                     "--gpus", "4", "--shard-policy", "stealing"]) == 0
        out = capsys.readouterr().out
        assert "shards: 4 (stealing, nvlink)" in out
        assert "utilization:" in out

    def test_sharded_counts_match_single_gpu(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER"]) == 0
        single = capsys.readouterr().out
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--gpus", "2", "--interconnect", "pcie"]) == 0
        sharded = capsys.readouterr().out
        line = next(l for l in single.splitlines() if "triangles:" in l)
        assert line in sharded

    def test_sharded_manifest_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        assert main(["run", "--task", "kcl", "--k", "3", "--dataset", "ER",
                     "--gpus", "2", "--manifest-out", str(path)]) == 0
        manifest = json.loads(path.read_text())
        assert manifest["schema"] == "gamma-shard-manifest/v1"
        assert manifest["num_shards"] == 2
        assert len(manifest["shards"]) == 2
        assert len(manifest["utilization"]) == 2

    def test_gpus_needs_gamma(self, capsys):
        assert main(["run", "--task", "kcl", "--dataset", "ER",
                     "--system", "Peregrine", "--gpus", "2"]) == 2
        assert "--gpus needs the GAMMA engine" in capsys.readouterr().err


class TestPlanFlags:
    def test_run_plan_auto_matches_baseline_counts(self, capsys):
        assert main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER"]) == 0
        base = capsys.readouterr().out
        assert main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--plan", "auto"]) == 0
        auto = capsys.readouterr().out
        base_line = next(l for l in base.splitlines() if "embeddings" in l)
        assert base_line in auto
        assert "plan:" in auto          # provenance printed for non-baseline

    def test_run_plan_baseline_prints_no_plan_line(self, capsys):
        assert main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--plan", "baseline"]) == 0
        assert "plan:" not in capsys.readouterr().out

    def test_plan_cache_dir_hits_across_runs(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "plans")
        args = ["run", "--task", "motifs", "--dataset", "ER",
                "--plan", "auto", "--plan-cache-dir", cache_dir]
        assert main(args) == 0
        assert "misses=1" in capsys.readouterr().out
        assert main(args) == 0
        assert "hits=1" in capsys.readouterr().out

    def test_plan_flags_rejected_for_unplanned_tasks(self, capsys):
        assert main(["run", "--task", "graphlets", "--dataset", "ER",
                     "--plan", "auto"]) == 2
        assert "--plan" in capsys.readouterr().err

    def test_bad_plan_file_rejected(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["run", "--task", "sm", "--dataset", "ER",
                     "--plan", str(bad)]) == 2
        assert "bad --plan" in capsys.readouterr().err

    def test_manifest_records_plan_block(self, capsys, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        assert main(["run", "--task", "fpm", "--dataset", "ER",
                     "--min-support", "2", "--plan", "auto",
                     "--manifest-out", str(path)]) == 0
        doc = json.loads(path.read_text())["extra"]["plan"]
        assert doc["id"]
        assert doc["source"] in ("auto", "hint")
        assert doc["actual_seconds"] > 0


class TestPlanExplainCommand:
    def test_explain_prints_and_saves(self, capsys, tmp_path):
        out_path = tmp_path / "plan.json"
        assert main(["plan", "explain", "--task", "sm", "--query", "2",
                     "--dataset", "ER", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "task=sm" in out and "order:" in out
        assert out_path.exists()
        # The saved plan runs through `repro run --plan <file>`.
        assert main(["run", "--task", "sm", "--query", "2",
                     "--dataset", "ER", "--plan", str(out_path)]) == 0
        assert "[file]" in capsys.readouterr().out

    def test_explain_baseline_mode(self, capsys):
        assert main(["plan", "explain", "--task", "fpm", "--dataset", "ER",
                     "--plan", "baseline"]) == 0
        assert "[baseline]" in capsys.readouterr().out

    def test_explain_wrong_pattern_file_rejected(self, capsys, tmp_path):
        out_path = tmp_path / "q1.json"
        assert main(["plan", "explain", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["plan", "explain", "--task", "sm", "--query", "2",
                     "--dataset", "ER", "--plan", str(out_path)]) == 2
        assert "bad --plan" in capsys.readouterr().err
