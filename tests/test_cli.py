"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


class TestDatasetsCommand:
    def test_prints_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cit-Patent" in out
        assert "twitter_rv" in out


class TestSystemsCommand:
    def test_lists_all_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("GAMMA", "Pangolin-GPU", "Peregrine", "GSI"):
            assert name in out


class TestRunCommand:
    def test_sm(self, capsys):
        code = main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--system", "GAMMA"])
        assert code == 0
        out = capsys.readouterr().out
        assert "embeddings" in out
        assert "simulated time" in out

    def test_sm_symmetry_breaking(self, capsys):
        code = main(["run", "--task", "sm", "--query", "1",
                     "--dataset", "ER", "--symmetry-breaking"])
        assert code == 0

    def test_kcl(self, capsys):
        assert main(["run", "--task", "kcl", "--k", "3",
                     "--dataset", "ER"]) == 0
        assert "3-cliques" in capsys.readouterr().out

    def test_triangles_on_baseline(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--system", "Peregrine"]) == 0

    def test_fpm_with_catalog_names(self, capsys):
        assert main(["run", "--task", "fpm", "--dataset", "ER",
                     "--min-support", "3"]) == 0
        out = capsys.readouterr().out
        assert "edge[" in out or "wedge[" in out or "edge" in out

    def test_fpm_mni(self, capsys):
        assert main(["run", "--task", "fpm", "--dataset", "ER",
                     "--min-support", "2", "--metric", "mni"]) == 0

    def test_motifs(self, capsys):
        assert main(["run", "--task", "motifs", "--edges", "2",
                     "--dataset", "ER"]) == 0
        assert "instances" in capsys.readouterr().out

    def test_crash_returns_nonzero(self, capsys):
        code = main(["run", "--task", "kcl", "--k", "4",
                     "--dataset", "CL", "--system", "Pangolin-GPU"])
        assert code == 1
        assert "CRASH" in capsys.readouterr().out

    def test_unknown_system(self, capsys):
        code = main(["run", "--task", "sm", "--system", "HAL9000",
                     "--dataset", "ER"])
        assert code == 2

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--task", "alchemy"])


class TestFigureCommand:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestGraphletsCommand:
    def test_graphlets(self, capsys):
        assert main(["run", "--task", "graphlets", "--k", "3",
                     "--dataset", "ER"]) == 0
        out = capsys.readouterr().out
        assert "graphlets" in out
        assert "induced occurrences" in out

    def test_breakdown_flag(self, capsys):
        assert main(["run", "--task", "triangles", "--dataset", "ER",
                     "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "where the time went" in out
        assert "compute" in out
