"""PlanCache: persistence, staleness invalidation, the LRU front."""

import dataclasses
import json
import sqlite3

import pytest

from repro.graph import sm_query
from repro.plan import PlanCache, baseline_plan


@pytest.fixture()
def cache_path(tmp_path):
    return tmp_path / "plans.sqlite"


def _plan(query=1):
    return baseline_plan("sm", sm_query(query))


PH = "deadbeef" * 8     # pattern-hash stand-in
PR = "cafef00d" * 8     # profile-hash stand-in


def test_round_trip_and_counters(cache_path):
    with PlanCache(cache_path) as cache:
        assert cache.get(PH, PR) is None
        cache.put(PH, PR, _plan())
        got = cache.get(PH, PR)
        assert got is not None
        assert got.plan_id == _plan().plan_id
        assert cache.hits == 1 and cache.misses == 1
        stats = cache.stats()
        assert stats["persisted"] == 1 and stats["lru"] == 1


def test_survives_process_restart(cache_path):
    with PlanCache(cache_path) as cache:
        cache.put(PH, PR, _plan(2))
    with PlanCache(cache_path) as reopened:
        got = reopened.get(PH, PR)
        assert got is not None
        assert got.plan_id == _plan(2).plan_id
        assert reopened.hits == 1     # served from SQLite, not the LRU


def test_profile_change_is_a_miss(cache_path):
    with PlanCache(cache_path) as cache:
        cache.put(PH, PR, _plan())
    with PlanCache(cache_path) as cache:
        assert cache.get(PH, "f" * 64) is None


def test_planner_version_bump_invalidates(cache_path):
    with PlanCache(cache_path) as cache:
        cache.put(PH, PR, _plan())
    with PlanCache(cache_path) as cache:
        cache._db.execute("UPDATE plans SET planner_version = 999")
        cache._db.commit()
        assert cache.get(PH, PR) is None
        assert cache.misses == 1


def test_corrupted_payload_is_a_miss_not_a_crash(cache_path):
    with PlanCache(cache_path) as cache:
        cache.put(PH, PR, _plan())
    db = sqlite3.connect(str(cache_path))
    db.execute("UPDATE plans SET payload = ?", (b'{"truncated":',))
    db.commit()
    db.close()
    with PlanCache(cache_path) as cache:
        assert cache.get(PH, PR) is None


def test_get_or_plan_builds_exactly_once(cache_path):
    builds = []

    def build():
        builds.append(1)
        return _plan()

    with PlanCache(cache_path) as cache:
        first = cache.get_or_plan(PH, PR, build)
        second = cache.get_or_plan(PH, PR, build)
        assert first.plan_id == second.plan_id
        assert len(builds) == 1
        assert cache.hits == 1 and cache.misses == 1


def test_lru_is_bounded_but_sqlite_keeps_everything(cache_path):
    with PlanCache(cache_path, lru_capacity=2) as cache:
        for q in (1, 2, 3):
            cache.put(f"{PH}:{q}", PR, _plan(q))
        assert cache.stats()["lru"] == 2
        assert cache.stats()["persisted"] == 3
        # The evicted entry still hits through SQLite.
        assert cache.get(f"{PH}:1", PR) is not None


def test_payload_sha_mismatch_is_stale(cache_path):
    with PlanCache(cache_path) as cache:
        cache.put(PH, PR, _plan())
        # Tamper with the payload while keeping it valid JSON: the stored
        # sha no longer matches, so the row must be treated as a miss.
        row = cache._db.execute(
            "SELECT payload FROM plans").fetchone()[0]
        doc = json.loads(row.decode("utf-8"))
        doc["order"] = list(reversed(doc["order"]))
        cache._db.execute(
            "UPDATE plans SET payload = ?",
            (json.dumps(doc, sort_keys=True).encode("utf-8"),))
        cache._db.commit()
        cache._lru.clear()
        assert cache.get(PH, PR) is None
