"""`--plan baseline` parity: every plan spelling of the pre-planner
behavior — library default ``plan=None``, the string ``"baseline"``, an
explicit :func:`baseline_plan` object, a saved-and-reloaded plan file —
must produce bit-identical results, simulated clocks, and counters.
"""

import pytest

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
    motif_count,
)
from repro.core import Gamma
from repro.graph import sm_query
from repro.plan import baseline_plan


def _snapshot(graph, runner, plan):
    with Gamma(graph) as engine:
        result = runner(engine, plan)
        return (result, engine.platform.clock.snapshot(),
                engine.platform.counters.snapshot(include_zero=True),
                engine.simulated_seconds)


def _specs(task, tmp_path, **params):
    explicit = baseline_plan(task, **params)
    path = tmp_path / f"{task}.plan.json"
    explicit.save(path)
    from repro.plan import CompiledPlan

    return [None, "baseline", explicit, CompiledPlan.load(path)]


@pytest.mark.parametrize("query", [1, 4])
def test_sm_baseline_spellings_identical(random_labeled_graph, tmp_path,
                                         query):
    pattern = sm_query(query)

    def run(engine, plan):
        r = match_pattern(engine, pattern, plan=plan)
        return (r.embeddings, r.unique_subgraphs)

    snaps = [_snapshot(random_labeled_graph, run, spec)
             for spec in _specs("sm", tmp_path, pattern=pattern)]
    assert all(s == snaps[0] for s in snaps[1:])


def test_fpm_baseline_spellings_identical(random_labeled_graph, tmp_path):
    def run(engine, plan):
        return frequent_pattern_mining(engine, 2, 3, plan=plan).patterns

    snaps = [_snapshot(random_labeled_graph, run, spec)
             for spec in _specs("fpm", tmp_path, iterations=2,
                                min_support=3)]
    assert all(s == snaps[0] for s in snaps[1:])


def test_motif_baseline_spellings_identical(random_labeled_graph, tmp_path):
    def run(engine, plan):
        r = motif_count(engine, 2, plan=plan)
        return (r.histogram, r.total_instances)

    snaps = [_snapshot(random_labeled_graph, run, spec)
             for spec in _specs("motif", tmp_path, num_edges=2)]
    assert all(s == snaps[0] for s in snaps[1:])


def test_kclique_baseline_spellings_identical(random_labeled_graph,
                                              tmp_path):
    def run(engine, plan):
        return count_kcliques(engine, 3, plan=plan).cliques

    snaps = [_snapshot(random_labeled_graph, run, spec)
             for spec in _specs("kclique", tmp_path, k=3)]
    assert all(s == snaps[0] for s in snaps[1:])
