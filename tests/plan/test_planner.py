"""Plan selection: candidate enumeration, hint safety net, resolve_plan."""

import pytest

from repro.core import Gamma
from repro.graph import Pattern, sm_query
from repro.graph.datasets import load as load_dataset
from repro.plan import (
    CompiledPlan,
    baseline_plan,
    compile_plan,
    enumerate_orders,
    profile_dataset,
    resolve_plan,
)


@pytest.fixture(scope="module")
def cl_profile():
    return profile_dataset(load_dataset("CL"))


class TestEnumerateOrders:
    def test_every_prefix_is_connected(self):
        pattern = sm_query(2)
        adj = {v: set() for v in range(pattern.num_vertices)}
        for u, v in pattern.edges:
            adj[u].add(v)
            adj[v].add(u)
        orders = enumerate_orders(pattern)
        assert orders
        for order in orders:
            assert sorted(order) == list(range(pattern.num_vertices))
            for i in range(1, len(order)):
                assert adj[order[i]] & set(order[:i])

    def test_cap_respected_and_deterministic(self):
        pattern = sm_query(3)
        assert enumerate_orders(pattern) == enumerate_orders(pattern)
        capped = enumerate_orders(pattern, cap=3)
        assert len(capped) == 3

    def test_hand_order_is_among_candidates(self):
        for q in (1, 2, 3, 4, 5, 6):
            pattern = sm_query(q)
            assert tuple(pattern.matching_order()) in enumerate_orders(
                pattern)


class TestAutoNeverWorseThanHint:
    @pytest.mark.parametrize("query", [1, 2, 3, 4, 5, 6])
    def test_predicted_at_most_baseline(self, cl_profile, query):
        plan = compile_plan("sm", pattern=sm_query(query),
                            profile=cl_profile, mode="auto")
        assert plan.predicted_seconds <= plan.baseline_predicted_seconds
        assert plan.candidates_considered >= 1

    def test_tie_keeps_the_hint(self, cl_profile):
        # A single edge: both orders cost the same (unlabeled), so the
        # planner must not churn away from the hand order.
        pattern = Pattern([(0, 1)], name="edge")
        plan = compile_plan("sm", pattern=pattern, profile=cl_profile,
                            mode="auto")
        assert plan.source == "hint"
        assert plan.order == tuple(pattern.matching_order())

    def test_rare_label_query_moves_off_the_hint(self, cl_profile):
        # q4 anchors the zipf-rarest label on a leaf; the label-blind
        # hand order starts at the max-degree vertex instead.
        plan = compile_plan("sm", pattern=sm_query(4), profile=cl_profile,
                            mode="auto")
        assert plan.source == "auto"
        assert plan.order != tuple(sm_query(4).matching_order())
        assert plan.predicted_seconds < plan.baseline_predicted_seconds

    def test_edge_task_picks_ordered_pair_growth(self, cl_profile):
        plan = compile_plan("fpm", profile=cl_profile, mode="auto",
                            iterations=2, min_support=10)
        assert plan.level_strategies[0] == {"ordered": True, "dedup": False}
        for strategy in plan.level_strategies[1:]:
            assert strategy == {"ordered": False, "dedup": True}


class TestBaselinePlans:
    def test_baseline_reproduces_hand_choices(self):
        pattern = sm_query(2)
        plan = baseline_plan("sm", pattern)
        assert plan.source == "baseline"
        assert plan.order == tuple(pattern.matching_order())
        assert plan.restrictions == tuple(
            pattern.symmetry_breaking_constraints())

    def test_baseline_edge_tasks_always_dedup(self):
        plan = baseline_plan("fpm", iterations=3, min_support=5)
        assert all(s == {"ordered": False, "dedup": True}
                   for s in plan.level_strategies)


class TestResolvePlan:
    def test_specs_map_to_sources(self, tiny_graph):
        with Gamma(tiny_graph) as engine:
            pattern = sm_query(1)
            assert resolve_plan(engine, "sm", pattern=pattern,
                                plan=None).source == "baseline"
            assert resolve_plan(engine, "sm", pattern=pattern,
                                plan="baseline").source == "baseline"
            auto = resolve_plan(engine, "sm", pattern=pattern, plan="auto")
            assert auto.source in ("auto", "hint")
            assert auto.profile_hash == profile_dataset(
                tiny_graph).profile_hash

    def test_compiled_plan_passes_through(self, tiny_graph):
        pattern = sm_query(1)
        plan = baseline_plan("sm", pattern)
        with Gamma(tiny_graph) as engine:
            assert resolve_plan(engine, "sm", pattern=pattern,
                                plan=plan) is plan

    def test_file_round_trip(self, tiny_graph, tmp_path):
        pattern = sm_query(1)
        path = tmp_path / "q1.plan.json"
        baseline_plan("sm", pattern).save(path)
        with Gamma(tiny_graph) as engine:
            loaded = resolve_plan(engine, "sm", pattern=pattern,
                                  plan=str(path))
        assert loaded.source == "file"
        assert loaded.order == tuple(pattern.matching_order())

    def test_mismatched_plan_rejected(self, tiny_graph):
        plan = baseline_plan("sm", sm_query(1))
        with Gamma(tiny_graph) as engine:
            with pytest.raises(ValueError, match="different pattern"):
                resolve_plan(engine, "sm", pattern=sm_query(2), plan=plan)
            with pytest.raises(ValueError, match="task"):
                resolve_plan(engine, "fpm", plan=plan,
                             iterations=2, min_support=5)

    def test_unknown_task_rejected(self, tiny_graph):
        with Gamma(tiny_graph) as engine:
            with pytest.raises(ValueError, match="unknown plan task"):
                resolve_plan(engine, "nonsense", plan="auto")


class TestPlanIdentity:
    def test_plan_id_tracks_executable_fields(self, cl_profile):
        base = baseline_plan("sm", sm_query(4))
        auto = compile_plan("sm", pattern=sm_query(4), profile=cl_profile,
                            mode="auto")
        assert base.plan_id != auto.plan_id          # different order
        again = compile_plan("sm", pattern=sm_query(4), profile=cl_profile,
                             mode="auto")
        assert auto.plan_id == again.plan_id         # deterministic

    def test_round_trip_preserves_identity(self, cl_profile, tmp_path):
        plan = compile_plan("sm", pattern=sm_query(5), profile=cl_profile,
                            mode="auto")
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = CompiledPlan.load(path)
        assert loaded.plan_id == plan.plan_id
        assert loaded.order == plan.order
        assert loaded.restrictions == plan.restrictions
