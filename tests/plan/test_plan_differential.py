"""Satellite differential corpus: planner-chosen orders change *where the
time goes*, never *what is counted*.

For random graphs and random connected patterns, an ``--plan auto`` run
must report counts identical to ``--plan baseline`` and to the
pure-Python DFS oracles (:mod:`tests.oracle`), across 1, 2, and 4
simulated GPUs and both pipeline arms.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
    motif_count,
)
from repro.core import Gamma
from repro.graph import Pattern, from_edges, zipf_labels
from repro.shard import ShardedGamma

from tests.oracle import (
    kclique_count_ref,
    motif_histogram_ref,
    sm_embedding_count_ref,
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SHARD_COUNTS = (1, 2, 4)

#: Connected query shapes up to 4 vertices (paths, cycle, triangle, star,
#: tailed triangle) — enough to exercise every planner branch.
_SHAPES = (
    [(0, 1), (1, 2)],
    [(0, 1), (1, 2), (0, 2)],
    [(0, 1), (0, 2), (0, 3)],
    [(0, 1), (1, 2), (2, 3)],
    [(0, 1), (1, 2), (0, 2), (2, 3)],
    [(0, 1), (1, 2), (2, 3), (3, 0)],
)


@hst.composite
def random_graphs(draw, max_vertices=18, max_edges=50, max_labels=3):
    n = draw(hst.integers(min_value=4, max_value=max_vertices))
    m = draw(hst.integers(min_value=3, max_value=max_edges))
    seed = draw(hst.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    labels = zipf_labels(n, max_labels, seed=seed)
    return from_edges(src, dst, num_vertices=n, labels=labels)


def _engine(graph, num_shards):
    if num_shards == 1:
        return Gamma(graph)
    return ShardedGamma(graph, num_shards=num_shards)


@given(graph=random_graphs(), shape=hst.sampled_from(_SHAPES),
       labeled=hst.booleans(), data=hst.data())
@SLOW
def test_sm_auto_equals_baseline_and_oracle(graph, shape, labeled, data):
    k = max(max(e) for e in shape) + 1
    labels = [data.draw(hst.integers(min_value=0, max_value=2))
              for __ in range(k)] if labeled else None
    pattern = Pattern(shape, labels=labels, name="diff-plan-sm")
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    arm = data.draw(hst.sampled_from(perf.PIPELINES))
    counts = {}
    with perf.pipeline(arm):
        for spec in ("baseline", "auto"):
            with _engine(graph, num_shards) as engine:
                counts[spec] = match_pattern(
                    engine, pattern, plan=spec).embeddings
    assert counts["auto"] == counts["baseline"]
    assert counts["auto"] == sm_embedding_count_ref(graph, pattern)


@given(graph=random_graphs(max_vertices=14, max_edges=36),
       num_edges=hst.integers(min_value=2, max_value=3), data=hst.data())
@SLOW
def test_motif_auto_equals_baseline_and_oracle(graph, num_edges, data):
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    arm = data.draw(hst.sampled_from(perf.PIPELINES))
    results = {}
    with perf.pipeline(arm):
        for spec in ("baseline", "auto"):
            with _engine(graph, num_shards) as engine:
                results[spec] = motif_count(
                    engine, num_edges, plan=spec).histogram
    assert results["auto"] == results["baseline"]
    assert results["auto"] == motif_histogram_ref(graph, num_edges)


@given(graph=random_graphs(max_vertices=14, max_edges=36),
       min_support=hst.sampled_from((1, 2, 5)),
       metric=hst.sampled_from(("instances", "mni")), data=hst.data())
@SLOW
def test_fpm_auto_equals_baseline(graph, min_support, metric, data):
    """FPM's support filter can disable ordered growth mid-run (rows
    dropped before extension); whatever the plan says, the adaptive
    fallback must keep the mined pattern set identical."""
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    arm = data.draw(hst.sampled_from(perf.PIPELINES))
    if num_shards > 1:
        metric = "instances"   # MNI minima do not decompose across shards
    results = {}
    with perf.pipeline(arm):
        for spec in ("baseline", "auto"):
            with _engine(graph, num_shards) as engine:
                results[spec] = frequent_pattern_mining(
                    engine, 2, min_support, support_metric=metric,
                    plan=spec).patterns
    assert results["auto"] == results["baseline"]


@given(graph=random_graphs(), k=hst.integers(min_value=3, max_value=4),
       data=hst.data())
@SLOW
def test_kclique_auto_equals_baseline_and_oracle(graph, k, data):
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    counts = {}
    for spec in ("baseline", "auto"):
        with _engine(graph, num_shards) as engine:
            counts[spec] = count_kcliques(engine, k, plan=spec).cliques
    assert counts["auto"] == counts["baseline"]
    assert counts["auto"] == kclique_count_ref(graph, k)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_wheel_triangle_query_auto_every_shard_count(wheel_graph,
                                                     num_shards):
    """Deterministic anchor: the W5 wheel has 5 triangles => 30 injective
    triangle embeddings, whatever order the planner picks."""
    pattern = Pattern([(0, 1), (1, 2), (0, 2)], name="triangle-q")
    with _engine(wheel_graph, num_shards) as engine:
        assert match_pattern(engine, pattern,
                             plan="auto").embeddings == 30
