"""DatasetProfile: the planner's view of a graph."""

import numpy as np

from repro.graph import from_edge_list
from repro.plan import DatasetProfile, profile_dataset


def test_profile_fields_tiny_graph(tiny_graph):
    profile = profile_dataset(tiny_graph)
    assert profile.num_vertices == 5
    assert profile.num_edges == tiny_graph.num_edges
    assert profile.max_degree == 3
    assert profile.num_labels == 3
    # labels [0, 2, 1, 0, 2] -> two 0s, one 1, two 2s
    assert profile.label_counts == (2, 1, 2)
    assert profile.label_frequency(1) == 1 / 5


def test_label_degree_means_follow_label_placement():
    # label 1 sits on the hub of a star; label 0 on the leaves.
    edges = [(0, i) for i in range(1, 6)]
    g = from_edge_list(edges, labels=np.array([1, 0, 0, 0, 0, 0]))
    profile = profile_dataset(g)
    assert profile.label_mean_degree(1) == 5.0
    assert profile.label_mean_degree(0) == 1.0
    assert profile.label_mean_degree(1) > profile.mean_degree


def test_profile_hash_is_stable_and_content_sensitive(tiny_graph,
                                                      wheel_graph):
    a = profile_dataset(tiny_graph)
    b = profile_dataset(tiny_graph)
    assert a.profile_hash == b.profile_hash
    assert a.profile_hash != profile_dataset(wheel_graph).profile_hash


def test_profile_round_trips_through_dict(tiny_graph):
    profile = profile_dataset(tiny_graph)
    clone = DatasetProfile.from_dict(profile.as_dict())
    assert clone == profile
    assert clone.profile_hash == profile.profile_hash


def test_edge_probability_bounded(random_labeled_graph):
    profile = profile_dataset(random_labeled_graph)
    assert 0.0 < profile.edge_probability() <= 1.0
