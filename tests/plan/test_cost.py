"""PlanCostModel: the ranking model behind plan selection.

These tests pin the *ordering* properties the planner relies on, not
absolute seconds — the model is a ranker, and ties are resolved toward
the hand-tuned hint elsewhere.
"""

import numpy as np

from repro.graph import Pattern, from_edge_list
from repro.plan import PlanCostModel, profile_dataset


def _rare_label_graph():
    """A star whose hub carries the common label and one leaf the rare one.

    Starting the match at the rare label scans one vertex; starting at
    the common label scans the rest of the graph.  Any sane cost model
    must rank the rare-first order cheaper.
    """
    edges = [(0, i) for i in range(1, 12)]
    labels = np.zeros(12, dtype=np.int64)
    labels[0] = 1      # hub: label 1
    labels[5] = 2      # one rare leaf: label 2
    return from_edge_list(edges, labels=labels)


def test_estimates_are_positive_and_stepwise(tiny_graph):
    model = PlanCostModel(profile_dataset(tiny_graph))
    pattern = Pattern([(0, 1), (1, 2)], name="path2")
    est = model.estimate_match_order(pattern, (0, 1, 2))
    assert est.seconds > 0
    assert len(est.steps) == 3            # seed + two extensions
    assert est.steps[0].kind == "seed"
    assert all(s.seconds >= 0 for s in est.steps)


def test_rare_label_start_ranks_cheaper():
    profile = profile_dataset(_rare_label_graph())
    model = PlanCostModel(profile)
    # q0 common leaf label, q1 hub, q2 rare leaf label.
    pattern = Pattern([(0, 1), (1, 2)], labels=[0, 1, 2], name="rare-path")
    rare_first = model.estimate_match_order(pattern, (2, 1, 0)).seconds
    common_first = model.estimate_match_order(pattern, (0, 1, 2)).seconds
    assert rare_first < common_first


def test_restrictions_reduce_predicted_cost(tiny_graph):
    model = PlanCostModel(profile_dataset(tiny_graph))
    pattern = Pattern([(0, 1), (1, 2), (0, 2)], name="triangle")
    order = (0, 1, 2)
    plain = model.estimate_match_order(pattern, order)
    restricted = model.estimate_match_order(
        pattern, order, restrictions=((0, 1), (1, 2)),
        symmetry_breaking=True)
    assert restricted.seconds < plain.seconds


def test_ordered_pair_growth_beats_dedup(random_labeled_graph):
    model = PlanCostModel(profile_dataset(random_labeled_graph))
    ordered = model.estimate_edge_plan(
        2, [{"ordered": True, "dedup": False}], aggregate=False)
    plain = model.estimate_edge_plan(
        2, [{"ordered": False, "dedup": True}], aggregate=False)
    assert ordered.seconds < plain.seconds
    # The dedup pass is exactly the work the ordered strategy skips.
    assert any(s.kind == "dedup" for s in plain.steps)
    assert not any(s.kind == "dedup" for s in ordered.steps)


def test_more_levels_cost_more(random_labeled_graph):
    model = PlanCostModel(profile_dataset(random_labeled_graph))
    one = model.estimate_edge_plan(2, [{"ordered": False, "dedup": True}])
    two = model.estimate_edge_plan(
        3, [{"ordered": False, "dedup": True}] * 2)
    assert two.seconds > one.seconds
