"""Plans are tasks: ``engine.run(plan)`` executes a CompiledPlan through
the same journaling/telemetry path as a callable task."""

import dataclasses

import pytest

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
    match_pattern_binary,
    motif_count,
)
from repro.core import Gamma
from repro.graph import sm_query
from repro.plan import baseline_plan, execute_plan
from repro.shard import ShardedGamma


def test_sm_plan_runs_as_engine_task(random_labeled_graph):
    pattern = sm_query(1)
    plan = baseline_plan("sm", pattern)
    with Gamma(random_labeled_graph) as engine:
        via_plan = engine.run(plan)
    with Gamma(random_labeled_graph) as engine:
        direct = match_pattern(engine, pattern)
    assert via_plan.embeddings == direct.embeddings
    assert via_plan.unique_subgraphs == direct.unique_subgraphs


def test_sm_binary_plan_executes(random_labeled_graph):
    pattern = sm_query(1)
    plan = baseline_plan("sm-binary", pattern)
    with Gamma(random_labeled_graph) as engine:
        via_plan = execute_plan(engine, plan)
    with Gamma(random_labeled_graph) as engine:
        direct = match_pattern_binary(engine, pattern)
    assert via_plan.embeddings == direct.embeddings


def test_fpm_plan_runs_as_engine_task(random_labeled_graph):
    plan = baseline_plan("fpm", iterations=2, min_support=2)
    with Gamma(random_labeled_graph) as engine:
        via_plan = engine.run(plan)
    with Gamma(random_labeled_graph) as engine:
        direct = frequent_pattern_mining(engine, 2, 2)
    assert via_plan.patterns == direct.patterns


def test_motif_plan_runs_sharded(random_labeled_graph):
    plan = baseline_plan("motif", num_edges=2)
    engine = ShardedGamma(random_labeled_graph, num_shards=2)
    try:
        via_plan = engine.run(plan)
    finally:
        engine.close()
    with Gamma(random_labeled_graph) as single:
        direct = motif_count(single, 2)
    assert via_plan.histogram == direct.histogram


def test_kclique_plan_executes(random_labeled_graph):
    plan = baseline_plan("kclique", k=3)
    with Gamma(random_labeled_graph) as engine:
        via_plan = execute_plan(engine, plan)
    with Gamma(random_labeled_graph) as engine:
        direct = count_kcliques(engine, 3)
    assert via_plan.cliques == direct.cliques


def test_unknown_task_raises(random_labeled_graph):
    plan = dataclasses.replace(baseline_plan("kclique", k=3),
                               task="nonsense")
    with Gamma(random_labeled_graph) as engine:
        with pytest.raises(ValueError, match="unknown plan task"):
            execute_plan(engine, plan)


def test_build_pattern_requires_a_pattern():
    plan = baseline_plan("motif", num_edges=2)
    with pytest.raises(ValueError, match="has no pattern"):
        plan.build_pattern()


def test_build_pattern_round_trips():
    pattern = sm_query(4)
    rebuilt = baseline_plan("sm", pattern).build_pattern()
    assert rebuilt.edges == pattern.edges
    assert [rebuilt.label(v) for v in range(rebuilt.num_vertices)] == \
        [pattern.label(v) for v in range(pattern.num_vertices)]


def test_describe_names_the_decisions():
    pattern = sm_query(2)
    text = baseline_plan("sm", pattern).describe()
    assert "task=sm" in text
    assert "order:" in text
    assert pattern.name in text
    fpm_text = baseline_plan("fpm", iterations=3,
                             min_support=7).describe()
    assert "level strategies" in fpm_text
    assert "min_support=7" in fpm_text
