"""Fixture-driven checker tests: snippet in, expected diagnostics out.

Each file in ``fixtures/`` is a self-describing case:

* ``# gammalint-fixture: <path>`` (line 1) — the path the snippet pretends
  to live at, which decides checker scopes;
* ``# gammalint-corpus: <text>`` (optional) — stand-in equivalence-test
  corpus for the pipeline-parity checker;
* ``# expect[<code>]`` — every diagnostic the linter must emit, anchored
  to its line.  The assertion is exact-set equality, so unmarked findings
  (false positives) fail just as loudly as missed ones.
"""

import pathlib
import re

import pytest

from repro.analysis import lint_source

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

_PATH = re.compile(r"#\s*gammalint-fixture:\s*(\S+)")
_CORPUS = re.compile(r"#\s*gammalint-corpus:\s*(.+)")
_EXPECT = re.compile(r"#\s*expect\[([a-z-]+)\]")


def _expected(text: str) -> set:
    out = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _EXPECT.finditer(line):
            out.add((lineno, match.group(1)))
    return out


def test_fixture_corpus_is_nonempty():
    assert len(FIXTURES) >= 4  # one per checker


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture(fixture):
    text = fixture.read_text()
    header = _PATH.search(text)
    assert header is not None, f"{fixture.name} lacks a gammalint-fixture header"
    corpus = _CORPUS.search(text)
    diagnostics = lint_source(
        text,
        path=header.group(1),
        tests_corpus=corpus.group(1).strip() if corpus else "",
    )
    got = {(d.line, d.code) for d in diagnostics}
    assert got == _expected(text), "\n".join(d.format() for d in diagnostics)


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_goes_quiet_outside_its_scope(fixture):
    """The same snippet at a path outside every scope draws no scoped
    diagnostics (the warp-race checker is deliberately scope-free)."""
    text = fixture.read_text()
    diagnostics = lint_source(text, path="scripts/standalone.py")
    scoped = {"charge", "dtype", "overflow", "banned-sort"}
    assert not [d for d in diagnostics if d.code in scoped]
