"""Unit tests for the interprocedural flow layer.

Three concerns:

* the **call graph** resolves the shapes that actually occur in this
  codebase — self/base-class methods, module aliases, calls inside
  comprehension scopes, constructors of classes with no explicit
  ``__init__`` — and knows what it cannot resolve;
* the **dataflow engine** carries value kinds through returns, calls and
  stores, and ``transitive_shared_writes`` produces a witness chain;
* the resolution-rate acceptance bar: **>= 90%** of intra-project call
  sites on the real ``src/repro`` tree resolve, measured over a
  non-trivial candidate count so the metric cannot be gamed by shrinking
  the denominator.
"""

import pathlib
import textwrap

import pytest

from repro.analysis.flow import build_project
from repro.analysis.flow import kinds as K
from repro.analysis.flow.symbols import module_name_for
from repro.analysis.framework import SourceModule

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _module(path, text):
    return SourceModule(path, textwrap.dedent(text))


def _project(*modules):
    return build_project([_module(p, t) for p, t in modules])


UTIL = (
    "src/repro/flowtest/util.py",
    """
    import sqlite3


    def helper():
        return set()


    def open_store(path):
        return sqlite3.connect(path)


    class Base:
        def ping(self):
            return 1

        def template(self):
            return self.hook()


    class Child(Base):
        def hook(self):
            return 2
    """,
)

MAIN = (
    "src/repro/flowtest/main.py",
    """
    from dataclasses import dataclass

    import repro.flowtest.util as u
    from .util import Child, helper


    @dataclass
    class Record:
        value: int = 0


    def bare_and_alias():
        a = helper()
        b = u.helper()
        return a, b


    def in_comprehension(n):
        return [helper() for _ in range(n)]


    def self_and_base():
        child = Child()
        child.ping()
        child.hook()
        return child


    def constructs_dataclass():
        return Record(value=3)


    def opaque_dict(d):
        return d.get("key")
    """,
)


class TestModuleNames:
    def test_plain_and_init(self):
        assert module_name_for("src/repro/plan/cache.py") == "repro.plan.cache"
        assert module_name_for("src/repro/plan/__init__.py") == "repro.plan"

    def test_fixture_style_path(self):
        assert module_name_for("repro/core/x.py") == "repro.core.x"


class TestCallGraph:
    @pytest.fixture(scope="class")
    def project(self):
        return _project(UTIL, MAIN)

    def _targets(self, project, func_qual):
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith(func_qual))
        return {
            s.target.qualname.rpartition(":")[2]
            for s in project.graph.sites_in(func) if s.target is not None
        }

    def test_bare_name_and_module_alias(self, project):
        targets = self._targets(project, "bare_and_alias")
        # both the `from .util import helper` name and the
        # `import repro.flowtest.util as u` attribute chain resolve.
        assert targets == {"helper"}
        sites = [s for s in project.graph.sites_in(
            next(f for f in project.table.functions()
                 if f.qualname.endswith("bare_and_alias")))]
        assert sum(s.resolved for s in sites) == 2

    def test_call_inside_comprehension_scope(self, project):
        assert "helper" in self._targets(project, "in_comprehension")

    def test_self_methods_through_base(self, project):
        # Child().ping() resolves through the project base class;
        # Child().hook() on the subclass itself.
        targets = self._targets(project, "self_and_base")
        assert {"Base.ping", "Child.hook"} <= targets
        # and self.hook() inside Base.template resolves nowhere (Base has
        # no hook) but stays a candidate — an honest unresolved site.
        template = next(f for f in project.table.functions()
                        if f.qualname.endswith("Base.template"))
        sites = project.graph.sites_in(template)
        assert any(s.candidate and not s.resolved for s in sites)

    def test_dataclass_constructor_counts_resolved(self, project):
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith("constructs_dataclass"))
        sites = [s for s in project.graph.sites_in(func)
                 if s.target_class is not None]
        assert len(sites) == 1
        assert sites[0].target_class.name == "Record"
        assert sites[0].resolved and sites[0].target is None

    def test_builtin_receiver_methods_are_not_candidates(self, project):
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith("opaque_dict"))
        # `.get` is shared with dict — never a candidate through the
        # unique-name fallback, so it cannot pollute the metric.
        assert all(not s.candidate for s in project.graph.sites_in(func))


class TestEngine:
    def test_unordered_kind_flows_through_return(self):
        project = _project(UTIL, MAIN)
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith("bare_and_alias"))
        summary = project.summary(func.qualname)
        assert K.UNORDERED in summary.returns

    def test_sqlite_kind_flows_interprocedurally(self):
        project = _project(UTIL)
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith("open_store"))
        assert K.SQLITE_CONN in project.summary(func.qualname).returns

    def test_transitive_shared_writes_witness(self):
        project = _project((
            "src/repro/flowtest/race.py",
            """
            def _charge(platform, amount):
                platform.clock.advance("compute", amount)


            def outer(platform):
                _charge(platform, 1e-6)
            """,
        ))
        func = next(f for f in project.table.functions()
                    if f.qualname.endswith(":outer"))
        witnesses = project.transitive_shared_writes(func.qualname)
        assert witnesses, "outer -> _charge -> clock.advance not found"
        path, desc = witnesses[0]
        assert desc == "clock.advance"
        assert any(q.endswith("_charge") for q in path)


class TestResolutionRate:
    """The acceptance bar from the issue, measured on the real tree."""

    @pytest.fixture(scope="class")
    def project(self):
        modules = [
            SourceModule.from_path(p)
            for p in sorted(SRC_ROOT.rglob("*.py"))
        ]
        return build_project(modules)

    def test_rate_at_least_90_percent(self, project):
        resolved, candidates = project.graph.resolution_stats()
        # Guard the denominator: a "100% of 12 sites" result would be a
        # broken candidate filter, not a good resolver.
        assert candidates >= 1000, candidates
        rate = resolved / candidates
        assert rate >= 0.90, f"resolution rate {rate:.1%} ({resolved}/{candidates})"
