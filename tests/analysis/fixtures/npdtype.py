# gammalint-fixture: src/repro/gpusim/fixture_hot.py
"""Seeded violations for the numpy-dtype checker (hot-module scope)."""

import numpy as np

from repro import perf


def missing_dtypes(n):
    a = np.arange(n)  # expect[dtype]
    b = np.zeros(n)  # expect[dtype]
    c = np.empty(n, dtype=np.int64)
    d = np.full(n, -1, np.int64)
    e = np.zeros_like(a)
    return a, b, c, d, e


def unguarded_packing(rows, values, n):
    return rows * np.int64(n) + values  # expect[overflow]


def shifted_packing(u, v):
    return (u << 32) | v  # expect[overflow]


_KEY_LIMIT = 1 << 62  # constant shift folds to a plain int: no finding


def guarded_packing(rows, values, n):
    if n > _KEY_LIMIT:
        raise ValueError("packing would overflow int64")
    return rows * np.int64(n) + values


def waived_packing(rows, values, n):
    return rows * np.int64(n) + values  # gammalint: allow[overflow] -- fixture: n is bounded by the caller


def gated_sorts(blocks, total_units):
    if perf.use_reference():
        return np.unique(blocks)
    occupancy = np.unique(blocks)  # expect[banned-sort]
    keep = np.bincount(blocks, minlength=total_units)
    return occupancy[keep[occupancy] > 0]
