# gammalint-fixture: src/repro/core/fixture_pipeline.py
# gammalint-corpus: gated_with_test tested_elsewhere
"""Seeded violations for the pipeline-parity checker.

The pretend corpus (header line above) names ``gated_with_test``, so only
the other gated functions draw ``parity-test``.
"""

from repro import perf


def gated_with_test(blocks):
    # Terminating reference arm + fall-through fast code: twin is fine,
    # and the corpus names this function.
    if perf.use_reference():
        return sorted(set(blocks))
    return list(dict.fromkeys(blocks))


def half_gated(values):  # expect[parity-test]
    if not perf.use_reference():  # expect[parity-twin]
        values = [v * 2 for v in values]
    return values


def mode_compared(values):  # expect[parity-test]
    if perf.pipeline_mode() == "fast":  # expect[parity-twin]
        values = values[:1]
    return values


def expression_gate(values):  # expect[parity-test]
    # A conditional expression always has both arms; only the missing
    # equivalence test is reported.
    return sorted(values) if perf.use_reference() else values


def both_arms_no_test(values):  # expect[parity-test]
    if perf.use_reference():
        out = sorted(values)
    else:
        out = values
    return out
