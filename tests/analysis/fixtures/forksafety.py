# gammalint-fixture: src/repro/shard/fixture_forksafety.py
"""Seeded violations for the fork-safety checker (interprocedural)."""

import pickle
import sqlite3


def _open_store(path):
    # The kind is born here; the sink is two calls away.
    return sqlite3.connect(path)


def ship_connection(path, wire):
    conn = _open_store(path)
    blob = pickle.dumps(conn)  # expect[fork-boundary]
    wire.send(blob)
    return conn


def ship_rows(path, wire):
    conn = _open_store(path)
    total = conn.execute("SELECT COUNT(*) FROM t").fetchone()[0]
    wire.send(pickle.dumps(int(total)))  # converted to plain data: fine
    conn.close()


def waived_send(path, wire):
    conn = _open_store(path)
    wire.send(pickle.dumps(conn))  # gammalint: allow[fork-boundary] -- fixture: test double's send() never leaves the process
    conn.close()


class LeakyCache:
    """Stores a connection, declares no pickle protocol."""

    def __init__(self, path):
        self._db = sqlite3.connect(path)  # expect[fork-state]
        self._capacity = 8


class ForkSafeCache:
    """Same state, but the boundary behavior is declared."""

    def __init__(self, path):
        self._path = path
        self._db = sqlite3.connect(path)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_db"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._db = sqlite3.connect(self._path)
