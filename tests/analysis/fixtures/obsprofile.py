# gammalint-fixture: src/repro/obs/profile/fixture_analysis.py
"""obs-profile exemption: the profiling subpackage analyzes recorded span
trees offline, so its ``aggregate_*``-shaped names are analysis
vocabulary, not engine phase boundaries — no span required, no
diagnostics expected anywhere in this file."""


def aggregate_paths(root):
    # Entry-prefix name, no span: exempt under repro/obs/profile/.
    totals = {}
    for node in root.walk():
        totals[node.path] = totals.get(node.path, 0.0) + node.sim_seconds
    return totals


def seed_window(records, limit):
    # Another entry-prefix collision; still exempt.
    return records[:limit]
