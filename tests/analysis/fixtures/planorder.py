# gammalint-fixture: src/repro/algorithms/fixture_driver.py
"""Seeded violations for the plan-order checker.

The pretend path sits in ``repro/algorithms/`` (engine scope), so direct
matching-order calls are flagged; the waivered verification call and the
plan request through ``resolve_plan`` are not.
"""


def hardcoded_driver(engine, pattern):
    order = pattern.matching_order()  # expect[planorder]
    restrictions = pattern.symmetry_breaking_constraints()  # expect[planorder]
    return order, restrictions


def hardcoded_binary_driver(engine, pattern):
    return pattern.edge_order()  # expect[planorder]


def verifier(pattern, mats):
    # Non-planning use: any canonical enumeration works here.
    order = pattern.matching_order()  # gammalint: allow[planorder] -- verification, not planning
    return [mats[:, i] for i, __ in enumerate(order)]


def plan_driven_driver(engine, pattern):
    from repro.plan import resolve_plan

    plan = resolve_plan(engine, "sm", pattern=pattern, plan=None)
    return list(plan.order)
