# gammalint-fixture: src/repro/gpusim/fixture_warploop.py
"""Seeded violations for the warp-race checker."""

from repro.gpusim.warp import warp_exclusive_scan


def racing_loop(grid, platform, pool, counts):
    total = 0
    for warp_id, start, stop in grid.partition(len(counts)):
        platform.clock.advance("compute", 1e-6)  # expect[warp-race]
        platform.counters.add("blocks", stop - start)  # expect[warp-race]
        pool.blocks_served += stop - start  # expect[warp-race]
        total += stop - start  # plain-name accumulator: fine
    return total


def waived_write(grid, platform, counts):
    for warp_id, start, stop in grid.partition(len(counts)):
        platform.cpu.work(stop - start)  # gammalint: allow[warp-race] -- fixture: CPU executor is single-warp by construction
    return None


def resolved_loop(grid, platform, counts):
    # warp_exclusive_scan in the body is the sanctioned conflict resolution.
    for warp_id, start, stop in grid.partition(len(counts)):
        scan, total = warp_exclusive_scan(counts[start:stop])
        platform.clock.advance("compute", total * 1e-9)
    return None


def charge_after_loop(grid, platform, counts):
    per_warp = []
    for warp_id, start, stop in grid.partition(len(counts)):
        per_warp.append(int(sum(counts[start:stop])))
    platform.kernel.launch("extend", element_ops=sum(per_warp))
    return per_warp
