# gammalint-fixture: src/repro/core/fixture_determinism.py
"""Seeded violations for the determinism checker (all three codes)."""

import math
import random
import time
from collections import defaultdict


def _active_categories(rows):
    # The unordered kind is born here; the loop is a call away.
    return {name for name, seconds in rows if seconds > 0}


def build_manifest(rows, emit):
    for name in _active_categories(rows):  # expect[det-order]
        emit(name)
    for name in sorted(_active_categories(rows)):  # sanitized: fine
        emit(name)
    return len(_active_categories(rows))  # order-insensitive: fine


def bucket_total(events):
    buckets = defaultdict(float)
    for _, category, seconds in events:
        buckets[category] += seconds
    wrong = sum(buckets.values())  # expect[det-float]
    right = math.fsum(buckets.values())
    return wrong, right


def choose_anchor(candidates):
    pick = random.choice(candidates)  # expect[det-seed]
    started = time.perf_counter()  # expect[det-seed]
    return pick, started


def seeded_anchor(candidates, seed):
    rng = random.Random(seed)  # explicit stream: fine
    return rng.choice(candidates)


def profiled_anchor(candidates):
    started = time.perf_counter()  # gammalint: allow[det-seed] -- fixture: host-side profiling, never feeds simulated accounting
    return candidates[0], started
