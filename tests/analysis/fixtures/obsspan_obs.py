# gammalint-fixture: src/repro/obs/fixture_layer.py
"""The telemetry layer itself (repro/obs/ outside profile/) IS in the
obs-span scope: a phase-boundary-shaped public function there must open
a span like the engine core's."""


def aggregate_samples(platform, samples):  # expect[obs-span]
    return sorted(samples)


def extend_export(platform, rows):
    with platform.telemetry.span("export", kind="phase"):
        return list(rows)
