# gammalint-fixture: src/repro/core/fixture_engine.py
"""Seeded violations for the charge-accounting checker.

Marked lines must be flagged; unmarked lines are negatives (charged
accessors, method calls, waived reads).
"""


def uncharged_reads(graph, vertices):
    starts = graph.offsets[vertices]  # expect[charge]
    neigh = graph.neighbors[starts]  # expect[charge]
    ids = graph.edge_ids[starts]  # expect[charge]
    labels = graph.labels[vertices]  # expect[charge]
    return starts, neigh, ids, labels


def uncharged_views(graph, v):
    a = graph.neighbors_of(v)  # expect[charge]
    b = graph.incident_edges_of(v)  # expect[charge]
    src, dst = graph.edge_endpoints(a)  # expect[charge]
    return a, b, src, dst


def region_internals(region):
    return region._array[:4]  # expect[charge]


def charged_ok(residence, region, starts, ends):
    # Routing through the charging APIs is the sanctioned path.
    region.charge_ranges(starts, ends)
    values, lengths = residence.adjacency_of(starts)
    data = region.gather(starts)
    return values, lengths, data


def method_not_array(pattern, v):
    # `.neighbors(...)` as a *call* is a method, not the CSR array.
    return pattern.neighbors(v)


def waived(graph, vertices):
    return graph.offsets[vertices]  # gammalint: allow[charge] -- fixture: ranges are charged by the caller via charge_ranges
