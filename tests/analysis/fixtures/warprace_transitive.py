# gammalint-fixture: src/repro/gpusim/fixture_warptrans.py
"""Seeded violations for the transitive warp-race rule.

The lexical warp-race fixture covers direct shared calls; this one hides
the shared-state write behind one and two layers of helper calls, which
only the call-graph-backed rule can see.
"""

from repro.gpusim.warp import warp_exclusive_scan


def _charge_compute(platform, amount):
    platform.clock.advance("compute", amount)


def _account_warp(platform, start, stop):
    # Two frames above the loop, the race is the same race.
    _charge_compute(platform, (stop - start) * 1e-9)


def hidden_race(grid, platform, counts):
    for warp_id, start, stop in grid.partition(len(counts)):
        _account_warp(platform, start, stop)  # expect[warp-race-transitive]
    return None


def _resolved_charge(platform, values):
    scan, total = warp_exclusive_scan(values)
    platform.clock.advance("compute", total * 1e-9)
    return scan


def resolved_helper(grid, platform, counts):
    # The callee resolves conflicts itself: a safe subtree.
    for warp_id, start, stop in grid.partition(len(counts)):
        _resolved_charge(platform, counts[start:stop])
    return None


def _pure_helper(counts, start, stop):
    return int(sum(counts[start:stop]))


def harmless_calls(grid, platform, counts):
    per_warp = []
    for warp_id, start, stop in grid.partition(len(counts)):
        per_warp.append(_pure_helper(counts, start, stop))
    platform.kernel.launch("extend", element_ops=sum(per_warp))
    return per_warp


def waived_race(grid, platform, counts):
    for warp_id, start, stop in grid.partition(len(counts)):
        _account_warp(platform, start, stop)  # gammalint: allow[warp-race-transitive] -- fixture: single-warp grid by construction
    return None
