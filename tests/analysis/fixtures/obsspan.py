# gammalint-fixture: src/repro/core/fixture_phases.py
"""Seeded violations for the obs-span checker."""


def extend_vertices(self, table):  # expect[obs-span]
    return self._extend_vertices_impl(table)


def seed_edges(platform, table):  # expect[obs-span]
    table.rows += 1
    return table


def aggregate_patterns(platform, codes):
    with platform.telemetry.span("aggregation", kind="phase"):
        return sorted(codes)


def sort_and_count(platform, keys):
    tel = platform.telemetry
    with tel.span("sort-and-count", kind="stage"):
        return len(keys)


def filter_rows(table, keep):  # gammalint: allow[obs-span] -- fixture: forwarding shim; the callee opens the span
    return table.compact(keep)


def _extend_vertices_impl(table):
    # Private impl twin: exempt by convention (the public wrapper spans).
    return table


def dedupe_helper(codes):
    # Not an entry point: `dedupe_` is not one of the marked prefixes.
    return set(codes)
