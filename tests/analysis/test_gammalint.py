"""gammalint framework behavior: registry, waivers, CLI, tree regression."""

import json
import pathlib

from repro.analysis import (
    Diagnostic,
    WaiverSet,
    all_checkers,
    known_codes,
    lint_paths,
    lint_source,
)
from repro.analysis.__main__ import main

REPO_ROOT = pathlib.Path(__file__).parents[2]


class TestRegistry:
    def test_all_eight_checkers_registered(self):
        names = {c.name for c in all_checkers()}
        assert names == {
            "charge-accounting",
            "determinism",
            "fork-safety",
            "numpy-dtype",
            "obs-span",
            "pipeline-parity",
            "plan-order",
            "warp-race",
        }

    def test_known_codes_cover_checkers_and_meta(self):
        codes = known_codes()
        assert {"charge", "dtype", "overflow", "banned-sort",
                "parity-twin", "parity-test", "warp-race",
                "warp-race-transitive", "obs-span", "planorder",
                "fork-boundary", "fork-state",
                "det-order", "det-float", "det-seed"} <= codes
        assert {"waiver-reason", "waiver-unknown", "waiver-unused",
                "waiver-stale"} <= codes


class TestWaivers:
    def test_missing_reason_is_reported(self):
        src = "x = graph.offsets[v]  # gammalint: allow[charge]\n"
        diags = lint_source(src, path="src/repro/core/w.py")
        assert [d.code for d in diags] == ["waiver-reason"]

    def test_unknown_code_is_reported(self):
        src = "x = 1  # gammalint: allow[made-up] -- because\n"
        codes = [d.code for d in lint_source(src, path="src/repro/core/w.py")]
        assert codes == ["waiver-unknown"]

    def test_unused_waiver_is_reported(self):
        src = "x = 1  # gammalint: allow[charge] -- nothing to waive here\n"
        codes = [d.code for d in lint_source(src, path="src/repro/core/w.py")]
        assert codes == ["waiver-unused"]

    def test_module_waiver_must_be_near_the_top(self):
        src = "\n" * 40 + "# gammalint: module-allow[charge] -- too deep\n"
        codes = [d.code for d in lint_source(src, path="src/repro/core/w.py")]
        assert "waiver-unknown" in codes

    def test_waiver_syntax_inside_strings_is_ignored(self):
        src = '"""# gammalint: allow[bogus]"""\nx = 1\n'
        assert WaiverSet("w.py", src).line_waivers == {}
        assert lint_source(src, path="src/repro/core/w.py") == []

    def test_multi_code_waiver(self):
        src = (
            "import numpy as np\n"
            "def f(graph, v, n):\n"
            "    return graph.offsets[v] * np.int64(n)"
            "  # gammalint: allow[charge, overflow] -- fixture: both invariants hold\n"
        )
        assert lint_source(src, path="src/repro/core/w.py") == []


class TestSelectAndScopes:
    SRC = "def f(graph, v):\n    return graph.offsets[v]\n"

    def test_select_filters_codes(self):
        diags = lint_source(self.SRC, path="src/repro/core/x.py",
                            select=["dtype"])
        assert diags == []
        diags = lint_source(self.SRC, path="src/repro/core/x.py",
                            select=["charge"])
        assert [d.code for d in diags] == ["charge"]

    def test_engine_scope_only(self):
        assert lint_source(self.SRC, path="src/repro/gpusim/x.py") == []

    def test_diagnostics_sort_stably(self):
        a = Diagnostic("a.py", 2, 1, "charge", "m", "c")
        b = Diagnostic("a.py", 1, 1, "dtype", "m", "c")
        assert sorted([a, b]) == [b, a]


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_json_lists_them(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(g, v):\n    return g.offsets[v]\n")
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["diagnostics"][0]["code"] == "charge"

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_checkers(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for name in ("charge-accounting", "numpy-dtype", "obs-span",
                     "pipeline-parity", "warp-race", "fork-safety",
                     "determinism"):
            assert name in out

    def test_sarif_output(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(g, v):\n    return g.offsets[v]\n")
        assert main([str(target), "--format", "sarif"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == "2.1.0"
        run = report["runs"][0]
        assert run["tool"]["driver"]["name"] == "gammalint"
        assert [r["ruleId"] for r in run["results"]] == ["charge"]
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_check_waivers_flags_stale_module_waiver(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "stale.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "# gammalint: module-allow[charge] -- nothing here charges\n"
            "x = 1\n")
        assert main([str(target)]) == 0
        assert main([str(target), "--check-waivers"]) == 1
        assert "waiver-stale" in capsys.readouterr().out

    def test_changed_with_bad_ref_degrades_to_full_run(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(g, v):\n    return g.offsets[v]\n")
        # not a git checkout / bogus ref: warn, then lint everything.
        assert main([str(target), "--changed", "no-such-ref-xyz"]) == 1
        captured = capsys.readouterr()
        assert "linting everything" in captured.err
        assert "charge" in captured.out

    def test_max_seconds_budget(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--max-seconds", "120"]) == 0
        assert "budget" in capsys.readouterr().err
        assert main([str(target), "--max-seconds", "0.0000001"]) == 3
        assert "TOO SLOW" in capsys.readouterr().err

    def test_syntax_error_is_a_diagnostic(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target)]) == 1
        assert "syntax-error" in capsys.readouterr().out


def test_src_tree_is_clean():
    """The acceptance criterion, pinned: the shipped tree lints clean —
    all eight checkers including the interprocedural ones, with the
    stale-waiver audit on."""
    diagnostics = lint_paths(
        [REPO_ROOT / "src"],
        tests_dir=REPO_ROOT / "tests",
        root=REPO_ROOT,
        check_waivers=True,
    )
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
