"""Package-level tests: public API surface, errors, example scripts."""

import pathlib
import subprocess
import sys

import pytest

import repro
from repro.errors import (
    DeviceOutOfMemory,
    GammaError,
    HostOutOfMemory,
    InvalidGraphError,
    InvalidPatternError,
)

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_headline_exports(self):
        assert repro.Gamma is repro.core.Gamma
        assert repro.Pattern is repro.graph.Pattern
        assert callable(repro.from_edge_list)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_have_docstrings(self):
        for module in (repro, repro.core, repro.graph, repro.gpusim,
                       repro.algorithms, repro.baselines, repro.bench):
            assert module.__doc__ and len(module.__doc__) > 40


class TestErrors:
    def test_hierarchy(self):
        for exc in (DeviceOutOfMemory, HostOutOfMemory, InvalidGraphError,
                    InvalidPatternError):
            assert issubclass(exc, GammaError)

    def test_oom_messages(self):
        exc = DeviceOutOfMemory(100, 10, tag="table")
        assert exc.requested == 100
        assert exc.available == 10
        assert "table" in str(exc)
        assert "100" in str(exc)

    def test_host_oom_without_tag(self):
        exc = HostOutOfMemory(5, 1)
        assert "host OOM" in str(exc)


class TestExamples:
    """The quick examples must run end to end (the slow ones are exercised
    by their underlying APIs in other tests)."""

    @pytest.mark.parametrize("script", ["quickstart.py", "fraud_ring_detection.py"])
    def test_example_runs(self, script):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

    def test_quickstart_oracle_agrees(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True, text=True, timeout=300,
        )
        assert "oracle agrees: True" in proc.stdout

    def test_all_examples_exist(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "fraud_ring_detection.py",
            "social_network_motifs.py",
            "out_of_core_scaling.py",
        } <= present
