"""Partition invariant for grafted worker span trees.

Under the process shard executor each worker runs its own span collector
and ships its exported tree back at finalize; the coordinator grafts the
records under its open root (``SpanCollector.graft_records``).  The
grafting must preserve the partition invariant the in-process collector
guarantees: summed self deltas over the whole (grafted) tree equal the
summed global totals of every platform involved — coordinator stand-in
plus all shard workers.  Straggler attribution, which is derived from
coordinator-side barrier/exchange journals, must not care which backend
ran the shards.
"""

import pytest

from repro import obs
from repro.algorithms import count_kcliques
from repro.graph import generators
from repro.obs.profile.straggler import straggler_report
from repro.shard import ShardedGamma


def _run(executor, num_shards=2, policy="degree"):
    graph = generators.erdos_renyi(30, 100, seed=9, labels=3)
    collector = obs.install(obs.SpanCollector())
    engine = ShardedGamma(graph, num_shards=num_shards, policy=policy,
                          executor=executor)
    try:
        count_kcliques(engine, 4)
        states = engine.shard_states()
        coordinator_counters = engine.platform.counters.snapshot(
            include_zero=False)
        coordinator_sim = engine.platform.clock.total
        straggler = straggler_report(engine)
        engine.finalize_telemetry()
        collector.finish()
    finally:
        engine.close()
    return {
        "collector": collector,
        "states": states,
        "coordinator_counters": coordinator_counters,
        "coordinator_sim": coordinator_sim,
        "straggler": straggler,
    }


def _summed_counters(run):
    totals = dict(run["coordinator_counters"])
    for state in run["states"]:
        for key, value in state["counters"].items():
            totals[key] = totals.get(key, 0) + value
    return {key: value for key, value in totals.items() if value}


@pytest.fixture(scope="module")
def process_run():
    return _run("process")


def test_grafted_counter_partition(process_run):
    got = {key: value
           for key, value in process_run["collector"]
           .self_counter_totals().items() if value}
    assert got == _summed_counters(process_run)


def test_grafted_sim_time_partition(process_run):
    totals = process_run["collector"].self_sim_totals()
    expected = process_run["coordinator_sim"] + sum(
        state["clock_total"] for state in process_run["states"])
    assert sum(totals.values()) == pytest.approx(expected, abs=1e-9)


def test_grafted_spans_are_tagged_and_rooted(process_run):
    collector = process_run["collector"]
    grafted = [span for span in collector.walk()
               if span.attrs.get("grafted")]
    assert grafted
    assert {span.attrs["shard"] for span in grafted} == {0, 1}
    # Record roots hang off the coordinator's root span, never float free.
    roots = [span for span in grafted
             if not collector.spans[span.parent].attrs.get("grafted")]
    assert roots
    for span in roots:
        assert collector.spans[span.parent].kind == "run"


def test_straggler_attribution_matches_serial():
    serial = _run("serial", num_shards=4, policy="stealing")
    process = _run("process", num_shards=4, policy="stealing")
    assert serial["straggler"] == process["straggler"]
    # And the gating-shard attribution is well-formed on both.
    for run in (serial, process):
        report = run["straggler"]
        assert report["supersteps"] > 0
        for entry in report["worst_barriers"]:
            assert 0 <= entry["gating_shard"] < 4
        assert sum(row["gated_supersteps"]
                   for row in report["per_shard"]) == report["supersteps"]
