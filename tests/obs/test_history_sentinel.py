"""Perf-history store and regression-sentinel gating."""

import json
import pickle

import pytest

from repro.obs.profile import (
    HistoryStore,
    SentinelConfig,
    check_run,
    inject_slowdown,
    render_verdicts,
)
from repro.obs.profile.history import HISTORY_SCHEMA
from repro.obs.profile.sentinel import (
    VERDICT_SCHEMA,
    attribute_buckets,
    attribute_subtrees,
)


def _tree_records():
    """Synthetic run > {setup, work > {kernel:a, kernel:b}} records."""
    return [
        {"index": 0, "parent": -1, "name": "run", "depth": 0,
         "sim_seconds": 8e-3, "sim_self_seconds": 0.0},
        {"index": 1, "parent": 0, "name": "setup", "depth": 1,
         "sim_seconds": 1e-3, "sim_self_seconds": 1e-3},
        {"index": 2, "parent": 0, "name": "work", "depth": 1,
         "sim_seconds": 7e-3, "sim_self_seconds": 1e-3},
        {"index": 3, "parent": 2, "name": "kernel:a", "depth": 2,
         "sim_seconds": 4e-3, "sim_self_seconds": 4e-3},
        {"index": 4, "parent": 2, "name": "kernel:b", "depth": 2,
         "sim_seconds": 2e-3, "sim_self_seconds": 2e-3},
    ]


def _baseline_record(seq, **overrides):
    record = {
        "bench": "t", "workload": "w", "arm": "", "seq": seq,
        "git_rev": "deadbeef", "simulated_seconds": 8e-3,
        "span_tree": _tree_records(),
    }
    record.update(overrides)
    return record


class TestHistoryStore:
    def test_append_assigns_monotonic_seq(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            first = store.append(bench="a", workload="w")
            second = store.append(bench="a", workload="w")
        assert first["schema"] == HISTORY_SCHEMA
        assert (first["seq"], second["seq"]) == (1, 2)
        assert first["git_rev"]  # always stamped, even outside a checkout

    def test_jsonl_is_the_source_of_truth(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            store.append(bench="a", workload="w", simulated_seconds=1.0)
        lines = (tmp_path / "history.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["simulated_seconds"] == 1.0

    def test_window_is_newest_first_with_limit(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            for i in range(5):
                store.append(bench="a", workload="w",
                             simulated_seconds=float(i))
            rows = store.window("a", "w", limit=3)
        assert [r["simulated_seconds"] for r in rows] == [4.0, 3.0, 2.0]

    def test_window_before_seq_excludes_the_candidate(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            for i in range(4):
                store.append(bench="a", workload="w",
                             simulated_seconds=float(i))
            rows = store.window("a", "w", before_seq=4)
        assert [r["seq"] for r in rows] == [3, 2, 1]

    def test_cells_and_latest_and_len(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            store.append(bench="a", workload="w", arm="fast")
            store.append(bench="a", workload="w", arm="fast")
            store.append(bench="b", workload="x")
            assert len(store) == 3
            cells = store.cells()
            assert cells == [
                {"bench": "a", "workload": "w", "arm": "fast", "count": 2},
                {"bench": "b", "workload": "x", "arm": "", "count": 1},
            ]
            assert store.latest("a", "w", arm="fast")["seq"] == 2
            assert store.latest("a", "nope") is None

    def test_arm_partitions_the_cell(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            store.append(bench="a", workload="w", arm="fast")
            store.append(bench="a", workload="w", arm="reference")
            assert len(store.window("a", "w", arm="fast")) == 1
            assert store.window("a", "w", arm="other") == []

    def test_index_rebuilds_after_deletion(self, tmp_path):
        with HistoryStore(tmp_path) as store:
            for i in range(3):
                store.append(bench="a", workload="w",
                             simulated_seconds=float(i))
        (tmp_path / "index.sqlite").unlink()
        with HistoryStore(tmp_path) as store:
            assert len(store) == 3
            assert store.latest("a", "w")["simulated_seconds"] == 2.0

    def test_pickle_drops_the_connection(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench="a", workload="w")
        clone = pickle.loads(pickle.dumps(store))
        assert clone._conn is None
        # The clone reopens lazily and sees (and extends) the same file.
        record = clone.append(bench="a", workload="w")
        assert record["seq"] == 2
        clone.close()
        store.close()


class TestCheckRun:
    def test_insufficient_history_is_not_flagged(self):
        window = [_baseline_record(1), _baseline_record(2)]
        verdict = check_run(_baseline_record(3), window)
        assert verdict["insufficient_history"]
        assert not verdict["flagged"]
        assert verdict["schema"] == VERDICT_SCHEMA

    def test_identical_runs_are_clean(self):
        window = [_baseline_record(i) for i in (1, 2, 3)]
        verdict = check_run(_baseline_record(4), window)
        assert not verdict["flagged"]
        assert verdict["metrics"]["simulated_seconds"]["ratio"] == (
            pytest.approx(1.0))

    def test_wall_noise_stays_under_the_relative_floor(self):
        window = [_baseline_record(i, wall_seconds=w)
                  for i, w in ((1, 1.00), (2, 1.02), (3, 0.98))]
        verdict = check_run(_baseline_record(4, wall_seconds=1.05), window)
        assert "wall_seconds" in verdict["metrics"]
        assert not verdict["flagged"]

    def test_injected_slowdown_is_flagged_and_attributed(self):
        window = [_baseline_record(i) for i in (1, 2, 3)]
        slowed, added = inject_slowdown(_tree_records(), "run/work", 1.3)
        candidate = _baseline_record(
            4, simulated_seconds=8e-3 + added, span_tree=slowed)
        verdict = check_run(candidate, window)
        assert verdict["flagged"]
        (flag,) = verdict["flags"]
        assert flag["metric"] == "simulated_seconds"
        assert flag["attribution_kind"] == "span_tree"
        top = flag["attribution"][0]["path"]
        # Deepest-subtree semantics: the injected path or a child of it.
        assert top == "run/work" or top.startswith("run/work/")

    def test_clock_bucket_fallback_when_no_trees(self):
        window = [
            {"bench": "t", "workload": "w", "arm": "", "seq": i,
             "simulated_seconds": 1.0,
             "clock_buckets": {"compute": 0.7, "pcie": 0.3}}
            for i in (1, 2, 3)
        ]
        candidate = {
            "bench": "t", "workload": "w", "arm": "", "seq": 4,
            "simulated_seconds": 1.4,
            "clock_buckets": {"compute": 1.1, "pcie": 0.3},
        }
        verdict = check_run(candidate, window)
        assert verdict["flagged"]
        (flag,) = verdict["flags"]
        assert flag["attribution_kind"] == "clock_buckets"
        assert flag["attribution"][0]["path"] == "compute"

    def test_render_verdicts(self):
        window = [_baseline_record(i) for i in (1, 2, 3)]
        slowed, added = inject_slowdown(_tree_records(), "run/work", 1.3)
        bad = check_run(
            _baseline_record(4, simulated_seconds=8e-3 + added,
                             span_tree=slowed), window)
        good = check_run(_baseline_record(5), window)
        text = render_verdicts([bad, good])
        assert "REGRESSION t/w/-" in text
        assert "ok" in text
        assert render_verdicts([]) == "(no verdicts)"


class TestAttribution:
    def test_subtrees_prefer_the_deepest_qualifying_path(self):
        slowed, __ = inject_slowdown(_tree_records(), "run/work", 1.3)
        rows = attribute_subtrees(_tree_records(), slowed)
        paths = [row["path"] for row in rows]
        # run and run/work are ancestors of qualifying kernels; dropped.
        assert "run" not in paths
        assert paths[0] == "run/work/kernel:a"
        assert rows[0]["delta"] == pytest.approx(4e-3 * 0.3)

    def test_subtrees_empty_when_nothing_regressed(self):
        assert attribute_subtrees(_tree_records(), _tree_records()) == []

    def test_bucket_shares_sum_to_one(self):
        rows = attribute_buckets(
            {"compute": 1.0, "pcie": 1.0}, {"compute": 1.5, "pcie": 1.25})
        assert [r["path"] for r in rows] == ["compute", "pcie"]
        assert sum(r["share_of_regression"] for r in rows) == (
            pytest.approx(1.0))
