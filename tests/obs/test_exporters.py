"""Exporter formats: Chrome trace events, metrics JSONL, ASCII renderers."""

import json

import pytest

from repro import obs
from repro.gpusim import clock as clk
from repro.gpusim import make_platform


@pytest.fixture(autouse=True)
def clean_default_slot():
    yield
    obs.uninstall()


def _collected():
    platform = make_platform()
    collector = obs.SpanCollector().attach(platform)
    with collector.span("phase-a"):
        platform.clock.advance(clk.COMPUTE, 1e-3)
        platform.counters.add("widgets", 5)
        collector.metric("widgets.batch", 5)
        with collector.span("kernel:x", kind="kernel"):
            platform.clock.advance(clk.COMPUTE, 2e-3)
    collector.finish()
    return collector


class TestChromeTrace:
    def test_structure(self):
        trace = obs.chrome_trace(_collected())
        payload = json.loads(json.dumps(trace))  # must be JSON-serializable
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert any(e["ph"] == "M" for e in events), "track metadata missing"
        complete = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"run", "phase-a", "kernel:x"} <= names
        for event in complete:
            assert event["dur"] >= 0
            assert {"ts", "pid", "tid", "args"} <= set(event)

    def test_sim_track_present_when_time_charged(self):
        events = obs.chrome_trace_events(_collected())
        sim_track = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        assert sim_track, "simulated-clock track missing"
        kernel = next(e for e in sim_track if e["name"] == "kernel:x")
        assert kernel["dur"] == pytest.approx(2e-3 * 1e6)  # microseconds

    def test_span_args_carry_counter_deltas(self):
        events = obs.chrome_trace_events(_collected())
        phase = next(e for e in events
                     if e["ph"] == "X" and e["name"] == "phase-a")
        assert phase["args"]["counters"]["widgets"] == 5

    def test_write_chrome_trace(self, tmp_path):
        path = obs.write_chrome_trace(_collected(), tmp_path / "t.json")
        assert json.loads(path.read_text())["traceEvents"]


class TestMetricsJsonl:
    def test_lines_parse_and_carry_fields(self):
        lines = obs.metrics_jsonl_lines(_collected())
        assert lines
        samples = [json.loads(line) for line in lines]
        batch = next(s for s in samples if s["name"] == "widgets.batch")
        assert batch["value"] == 5
        assert batch["span"] is not None

    def test_write_metrics_jsonl(self, tmp_path):
        path = obs.write_metrics_jsonl(_collected(), tmp_path / "m.jsonl")
        assert len(path.read_text().splitlines()) >= 1


class TestSpanTreeRecords:
    def test_parent_links_and_depths(self):
        records = obs.span_tree_records(_collected())
        by_name = {r["name"]: r for r in records}
        root = by_name["run"]
        assert root["parent"] == -1 or root["parent"] == root["index"]
        assert by_name["phase-a"]["parent"] == root["index"]
        assert by_name["kernel:x"]["parent"] == by_name["phase-a"]["index"]
        assert by_name["kernel:x"]["depth"] == by_name["phase-a"]["depth"] + 1
        assert by_name["kernel:x"]["kind"] == "kernel"

    def test_self_sim_partitions_the_clock(self):
        import math
        collector = _collected()
        records = obs.span_tree_records(collector)
        total_self = math.fsum(r["sim_self_seconds"] for r in records)
        assert total_self == pytest.approx(3e-3)
        # sim_self_seconds is exactly the sum of the per-bucket self table.
        for record in records:
            assert record["sim_self_seconds"] == pytest.approx(
                math.fsum(record["sim_self"].values()))

    def test_inclusive_counters_roll_up(self):
        records = obs.span_tree_records(_collected())
        by_name = {r["name"]: r for r in records}
        assert by_name["phase-a"]["counters"]["widgets"] == 5
        assert by_name["run"]["counters"]["widgets"] == 5
        assert by_name["kernel:x"]["counters_self"].get("widgets", 0) == 0

    def test_records_are_json_stable(self):
        records = obs.span_tree_records(_collected())
        assert json.loads(json.dumps(records)) == records


class TestAsciiRenderers:
    def test_render_bars_rows(self):
        out = obs.render_bars([("compute", 0.003, 0.75),
                               ("pcie", 0.001, 0.25)], width=20)
        assert "compute" in out
        assert "75.0%" in out
        assert "3.000 ms" in out

    def test_render_bars_empty(self):
        assert obs.render_bars([], empty="(nothing)") == "(nothing)"

    def test_render_span_tree_indents_children(self):
        out = obs.render_span_tree(_collected())
        lines = out.splitlines()
        run_line = next(l for l in lines if l.lstrip().startswith("run"))
        kernel_line = next(l for l in lines if "kernel:x" in l)
        indent = lambda l: len(l) - len(l.lstrip())  # noqa: E731
        assert indent(kernel_line) > indent(run_line)

    def test_render_span_tree_max_depth_prunes(self):
        out = obs.render_span_tree(_collected(), max_depth=1)
        assert "phase-a" in out
        assert "kernel:x" not in out

    def test_render_span_tree_shows_hot_counters(self):
        out = obs.render_span_tree(_collected())
        assert "widgets" in out
