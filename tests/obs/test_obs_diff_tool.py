"""Exit-code contract of the tools/obs_diff.py regression gate."""

import copy
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import obs
from repro.algorithms import triangle_count
from repro.core import Gamma
from repro.graph import kronecker

REPO_ROOT = pathlib.Path(__file__).parents[2]
TOOL = REPO_ROOT / "tools" / "obs_diff.py"


def _run_tool(*argv):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, argv)],
        capture_output=True, text=True, env=env,
    )


@pytest.fixture(scope="module")
def manifest_path(tmp_path_factory):
    graph = kronecker(7, 4, seed=3)
    collector = obs.install(obs.SpanCollector())
    with Gamma(graph) as engine:
        triangle_count(engine)
        collector.finish()
        manifest = obs.build_manifest(
            engine.platform, collector,
            system="GAMMA", dataset="K7", task="triangles")
    obs.uninstall()
    path = tmp_path_factory.mktemp("manifests") / "base.json"
    obs.write_manifest(manifest, path)
    return path


def _regressed_copy(manifest_path, target):
    manifest = json.loads(manifest_path.read_text())
    worse = copy.deepcopy(manifest)
    worse["counters"]["page_faults"] = (
        worse["counters"].get("page_faults", 0) * 2 + 100)
    target.write_text(json.dumps(worse))
    return target


class TestObsDiffTool:
    def test_identical_manifests_exit_zero(self, manifest_path):
        proc = _run_tool(manifest_path, manifest_path)
        assert proc.returncode == 0, proc.stderr
        assert "within thresholds" in proc.stdout

    def test_injected_regression_exits_nonzero(self, manifest_path, tmp_path):
        worse = _regressed_copy(manifest_path, tmp_path / "worse.json")
        proc = _run_tool(manifest_path, worse)
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "page_faults" in proc.stdout

    def test_warn_only_exits_zero(self, manifest_path, tmp_path):
        worse = _regressed_copy(manifest_path, tmp_path / "worse.json")
        proc = _run_tool(manifest_path, worse, "--warn-only")
        assert proc.returncode == 0

    def test_bench_report_shape(self, manifest_path, tmp_path):
        manifest = json.loads(manifest_path.read_text())
        report = {"schema": 2, "workloads": [
            {"workload": "triangles", "manifest": manifest}]}
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(report))
        proc = _run_tool(report_path, manifest_path)
        assert proc.returncode == 0, proc.stderr
        assert "GAMMA/K7/triangles" in proc.stdout

    def test_manifestless_baseline_is_skipped(self, manifest_path, tmp_path):
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"schema": 1, "workloads": [
            {"workload": "triangles", "fast_seconds": 1.0}]}))
        proc = _run_tool(legacy, manifest_path)
        assert proc.returncode == 0
        assert "nothing to gate" in proc.stdout

    def test_disjoint_workloads_compare_nothing(self, manifest_path, tmp_path):
        manifest = json.loads(manifest_path.read_text())
        other = copy.deepcopy(manifest)
        other["dataset"] = "ZZ"
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other))
        proc = _run_tool(manifest_path, other_path)
        assert proc.returncode == 0
        assert "no comparable manifests" in proc.stdout

    def test_manifestless_candidate_exits_two_strict(self, manifest_path,
                                                     tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        proc = _run_tool(manifest_path, empty)
        assert proc.returncode == 2
        # ...but warn-only reports and succeeds (bedding-in mode).
        proc = _run_tool(manifest_path, empty, "--warn-only")
        assert proc.returncode == 0

    def test_named_exit_code_constants(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location("obs_diff", TOOL)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert (module.EXIT_OK, module.EXIT_REGRESSIONS,
                module.EXIT_NO_CANDIDATE) == (0, 1, 2)
