"""Span-tree reassembly, critical-path analysis, and slowdown injection."""

import pytest

from repro import obs
from repro.gpusim import clock as clk
from repro.gpusim import make_platform
from repro.obs.profile import (
    aggregate_paths,
    build_tree,
    critical_path,
    critical_path_report,
    hot_subtrees,
    inject_slowdown,
    render_critical_path,
)
from repro.obs.profile.spantree import SpanNode, path_depth


@pytest.fixture(autouse=True)
def clean_default_slot():
    yield
    obs.uninstall()


def _records():
    """A three-level tree: run > {setup, work > {kernel, kernel}}."""
    platform = make_platform()
    collector = obs.SpanCollector().attach(platform)
    with collector.span("setup"):
        platform.clock.advance(clk.HOST_PREP, 1e-3)
    with collector.span("work"):
        platform.clock.advance(clk.COMPUTE, 1e-3)
        with collector.span("kernel:a", kind="kernel"):
            platform.clock.advance(clk.COMPUTE, 4e-3)
        with collector.span("kernel:b", kind="kernel"):
            platform.clock.advance(clk.COMPUTE, 2e-3)
    collector.finish()
    return obs.span_tree_records(collector)


class TestSpanTree:
    def test_build_tree_reassembles_parents(self):
        root = build_tree(_records())
        assert root.name == "run"
        names = {node.name for node in root.walk()}
        assert {"run", "setup", "work", "kernel:a", "kernel:b"} <= names
        work = next(n for n in root.walk() if n.name == "work")
        assert {c.name for c in work.children} == {"kernel:a", "kernel:b"}

    def test_paths_are_slash_joined_and_depth_counted(self):
        root = build_tree(_records())
        kernel = next(n for n in root.walk() if n.name == "kernel:a")
        assert kernel.path == "run/work/kernel:a"
        assert path_depth(kernel.path) == 2
        assert path_depth(root.path) == 0

    def test_roundtrip_through_records(self):
        records = _records()
        rebuilt = [node.to_record() for node in build_tree(records).walk()]
        by_index = {r["index"]: r for r in rebuilt}
        for record in records:
            assert by_index[record["index"]]["sim_seconds"] == pytest.approx(
                record["sim_seconds"])

    def test_aggregate_paths_inclusive_and_self(self):
        paths = aggregate_paths(build_tree(_records()))
        work = paths["run/work"]
        assert work["sim_seconds"] == pytest.approx(7e-3)
        assert work["sim_self_seconds"] == pytest.approx(1e-3)
        assert paths["run"]["sim_seconds"] == pytest.approx(8e-3)

    def test_empty_tree(self):
        assert build_tree([]) is None
        assert aggregate_paths(None) == {}


class TestCriticalPath:
    def test_descends_into_heaviest_child(self):
        rows = critical_path(_records())
        assert [r["name"] for r in rows] == ["run", "work", "kernel:a"]
        assert rows[-1]["inclusive"] == pytest.approx(4e-3)

    def test_shares_are_relative_to_root(self):
        rows = critical_path(_records())
        assert rows[0]["share"] == pytest.approx(1.0)
        assert rows[1]["share"] == pytest.approx(7 / 8)

    def test_hot_subtrees_rank_by_self_time(self):
        rows = hot_subtrees(_records(), top=3)
        assert rows[0]["path"] == "run/work/kernel:a"
        assert rows[0]["self"] == pytest.approx(4e-3)
        assert sum(r["share"] for r in rows) <= 1.0 + 1e-9

    def test_report_and_render(self):
        report = critical_path_report(_records())
        assert report["schema"] == "gamma-critical-path/1"
        text = render_critical_path(_records())
        assert "critical path" in text
        assert "kernel:a" in text

    def test_empty_records(self):
        assert critical_path([]) == []
        assert "no spans" in render_critical_path([])


class TestInjectSlowdown:
    def test_scales_subtree_and_propagates_to_ancestors(self):
        records = _records()
        slowed, added = inject_slowdown(records, "run/work", 1.5)
        assert added == pytest.approx(7e-3 * 0.5)
        paths = aggregate_paths(build_tree(slowed))
        assert paths["run/work"]["sim_seconds"] == pytest.approx(7e-3 * 1.5)
        # The root grows by exactly the injected delta; the sibling
        # subtree is untouched.
        assert paths["run"]["sim_seconds"] == pytest.approx(8e-3 + added)
        assert paths["run/setup"]["sim_seconds"] == pytest.approx(1e-3)

    def test_leaf_injection(self):
        slowed, added = inject_slowdown(_records(), "run/work/kernel:b", 2.0)
        assert added == pytest.approx(2e-3)
        paths = aggregate_paths(build_tree(slowed))
        assert paths["run/work/kernel:b"]["sim_seconds"] == pytest.approx(
            4e-3)
        assert paths["run/work/kernel:a"]["sim_seconds"] == pytest.approx(
            4e-3)

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError):
            inject_slowdown(_records(), "run/nonesuch", 1.3)

    def test_input_records_unmodified(self):
        records = _records()
        before = [dict(r) for r in records]
        inject_slowdown(records, "run/work", 1.5)
        assert records == before


class TestSpanNodeFromRecord:
    def test_defaults_for_sparse_record(self):
        node = SpanNode({"index": 0, "name": "x"})
        assert node.parent == -1
        assert node.sim_seconds == 0.0
        assert node.counters == {}
