"""Span-tree semantics, the null fast path, and the partition invariant."""

import pytest

from repro import obs
from repro.algorithms import count_kcliques, triangle_count
from repro.core import Gamma
from repro.graph import kronecker
from repro.gpusim import clock as clk
from repro.gpusim import make_platform
from repro.obs.spans import NULL_TELEMETRY, _default_collector


@pytest.fixture(autouse=True)
def clean_default_slot():
    yield
    obs.uninstall()


class TestNullTelemetry:
    def test_inert_interface(self):
        assert NULL_TELEMETRY.active is False
        span = NULL_TELEMETRY.span("anything", kind="phase", level=3, x=1)
        assert NULL_TELEMETRY.span("other") is span, "must be one cached CM"
        with span:
            pass
        NULL_TELEMETRY.metric("m", 1.0, label="x")
        NULL_TELEMETRY.gauge("g", lambda: 1)

    def test_platform_default(self):
        platform = make_platform()
        assert platform.telemetry is NULL_TELEMETRY
        assert platform.kernel.telemetry is NULL_TELEMETRY


class TestSpanCollector:
    def test_deltas_inclusive_and_self(self):
        platform = make_platform()
        collector = obs.SpanCollector().attach(platform)
        with collector.span("phase-a"):
            platform.clock.advance(clk.COMPUTE, 1.0)
            platform.counters.add("widgets", 5)
            with collector.span("inner", kind="kernel"):
                platform.clock.advance(clk.COMPUTE, 2.0)
                platform.counters.add("widgets", 7)
        collector.finish()
        by_name = {s.name: s for s in collector.walk()}
        outer, inner = by_name["phase-a"], by_name["inner"]
        assert outer.counters["widgets"] == 12          # inclusive
        assert outer.counters_self.get("widgets", 0) == 5
        assert inner.counters["widgets"] == 7
        assert outer.sim_buckets[clk.COMPUTE] == pytest.approx(3.0)
        assert outer.sim_self[clk.COMPUTE] == pytest.approx(1.0)
        assert inner.depth == outer.depth + 1
        assert inner.parent == outer.index

    def test_root_span_opens_on_bind(self):
        platform = make_platform()
        collector = obs.SpanCollector().attach(platform)
        assert collector.root is not None
        assert collector.root.name == "run"
        assert collector.root.kind == "run"

    def test_bind_twice_raises(self):
        collector = obs.SpanCollector().attach(make_platform())
        with pytest.raises(RuntimeError):
            collector.bind(make_platform())

    def test_finish_is_idempotent_and_detaches(self):
        platform = make_platform()
        collector = obs.SpanCollector().attach(platform)
        collector.finish()
        collector.finish()
        assert platform.telemetry is NULL_TELEMETRY
        assert collector.root.t1 >= collector.root.t0

    def test_out_of_order_exit_is_tolerated(self):
        platform = make_platform()
        collector = obs.SpanCollector().attach(platform)
        outer_cm = collector.span("outer")
        inner_cm = collector.span("inner")
        outer_cm.__enter__()
        inner_cm.__enter__()
        outer_cm.__exit__(None, None, None)  # closes inner first
        collector.finish()
        by_name = {s.name: s for s in collector.walk()}
        assert by_name["inner"].t1 <= by_name["outer"].t1

    def test_metric_tags_open_span(self):
        collector = obs.SpanCollector().attach(make_platform())
        with collector.span("p") as span:
            collector.metric("extension.rows_out", 42, level=1)
        sample = collector.metrics.samples[-1]
        assert sample.span == span.index
        assert sample.labels == {"level": 1}


class TestDefaultSlot:
    def test_install_adopts_next_platform(self):
        collector = obs.install(obs.SpanCollector())
        platform = make_platform()
        assert platform.telemetry is collector
        second = make_platform()  # first platform wins
        assert second.telemetry is NULL_TELEMETRY
        collector.finish()
        assert _default_collector() is None

    def test_uninstall_other_collector_is_noop(self):
        collector = obs.install(obs.SpanCollector())
        obs.uninstall(obs.SpanCollector())
        assert _default_collector() is collector


class TestPartitionInvariant:
    """Self deltas summed over the tree == the platform's global totals."""

    def _run(self, task):
        graph = kronecker(7, 4, seed=3)
        collector = obs.install(obs.SpanCollector())
        with Gamma(graph) as engine:
            task(engine)
            collector.finish()
            counters = engine.platform.counters.snapshot(include_zero=False)
            sim_total = engine.platform.clock.total
        return collector, counters, sim_total

    def test_counter_partition_triangles(self):
        collector, counters, _ = self._run(triangle_count)
        assert collector.self_counter_totals() == counters

    def test_sim_time_partition_kcl(self):
        collector, _, sim_total = self._run(
            lambda e: count_kcliques(e, 4))
        totals = collector.self_sim_totals()
        assert sum(totals.values()) == pytest.approx(sim_total, abs=1e-9)

    def test_tree_has_at_least_three_depths(self):
        collector, _, _ = self._run(triangle_count)
        assert collector.max_depth() >= 3
        kinds = {s.kind for s in collector.walk()}
        assert {"run", "phase", "kernel"} <= kinds
