"""Run manifests: contents, roundtrip, and the diff gate's semantics."""

import copy

import pytest

from repro import obs
from repro.algorithms import triangle_count
from repro.core import Gamma
from repro.graph import kronecker


@pytest.fixture(autouse=True)
def clean_default_slot():
    yield
    obs.uninstall()


@pytest.fixture(scope="module")
def manifest():
    graph = kronecker(7, 4, seed=3)
    collector = obs.install(obs.SpanCollector())
    with Gamma(graph) as engine:
        triangle_count(engine)
        collector.finish()
        return obs.build_manifest(
            engine.platform, collector,
            system="GAMMA", dataset="K7", task="triangles",
            config=engine.config,
        )


class TestBuildManifest:
    def test_identity_fields(self, manifest):
        assert manifest["schema"].startswith("gamma-manifest/")
        assert manifest["system"] == "GAMMA"
        assert manifest["dataset"] == "K7"
        assert manifest["task"] == "triangles"
        assert manifest["pipeline"] in ("fast", "reference")
        assert manifest["git_rev"]

    def test_counters_recorded(self, manifest):
        counters = manifest["counters"]
        assert counters["page_faults"] >= 0
        assert counters["element_ops"] > 0
        assert all(isinstance(v, int) and v >= 0 for v in counters.values())

    def test_derived_metrics_are_sane(self, manifest):
        derived = manifest["derived"]
        assert 0.0 <= derived["page_hit_rate"] <= 1.0
        assert derived["pcie_utilization"] > 0
        assert derived["device_utilization"] > 0

    def test_span_stats(self, manifest):
        assert manifest["spans"]["count"] > 3
        assert manifest["spans"]["max_depth"] >= 3
        assert manifest["spans"]["by_kind"]["run"] == 1

    def test_config_captured(self, manifest):
        assert "num_warps" in manifest["config"]
        assert "buffer_fraction" in manifest["config"]

    def test_roundtrip(self, manifest, tmp_path):
        path = obs.write_manifest(manifest, tmp_path / "m.json")
        assert obs.load_manifest(path) == manifest


class TestDiffManifests:
    def test_identical_is_clean(self, manifest):
        findings = obs.diff_manifests(manifest, manifest)
        assert [f for f in findings if f["regression"]] == []

    def test_doubled_page_faults_regress(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["counters"]["page_faults"] = (
            manifest["counters"]["page_faults"] * 2 + 100)
        findings = obs.diff_manifests(manifest, worse)
        bad = [f for f in findings if f["regression"]]
        assert any(f["name"] == "page_faults" for f in bad)

    def test_small_absolute_growth_is_under_the_floor(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["counters"]["kernel_launches"] = (
            manifest["counters"]["kernel_launches"] + 2)  # < floor of 8
        findings = obs.diff_manifests(manifest, worse)
        assert [f for f in findings if f["regression"]] == []

    def test_improvement_is_not_a_regression(self, manifest):
        better = copy.deepcopy(manifest)
        better["counters"]["page_faults"] = 0
        better["simulated_seconds"] = manifest["simulated_seconds"] / 2
        findings = obs.diff_manifests(manifest, better)
        assert [f for f in findings if f["regression"]] == []

    def test_sim_time_regression(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["simulated_seconds"] = manifest["simulated_seconds"] * 1.5
        findings = obs.diff_manifests(manifest, worse)
        assert any(f["regression"] and f["kind"] == "sim_time"
                   for f in findings)

    def test_threshold_is_tunable(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["simulated_seconds"] = manifest["simulated_seconds"] * 1.02
        loose = obs.diff_manifests(manifest, worse, time_threshold=0.05)
        tight = obs.diff_manifests(manifest, worse, time_threshold=0.01)
        assert not any(f["regression"] for f in loose)
        assert any(f["regression"] for f in tight)

    def test_missing_counter_is_treated_as_zero(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["counters"]["brand_new_counter"] = 100
        findings = obs.diff_manifests(manifest, worse)
        new = next(f for f in findings if f["name"] == "brand_new_counter")
        assert new["baseline"] == 0
        assert new["regression"]  # 0 -> 100 clears the absolute floor
        # ...but a tiny new counter stays under it.
        small = copy.deepcopy(manifest)
        small["counters"]["tiny_new_counter"] = 3
        assert [f for f in obs.diff_manifests(manifest, small)
                if f["regression"]] == []

    def test_nan_candidate_counter_fails_the_gate(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["counters"]["page_faults"] = float("nan")
        findings = obs.diff_manifests(manifest, worse)
        bad = next(f for f in findings if f["name"] == "page_faults")
        assert bad["regression"]
        assert bad["ratio"] is None

    def test_nan_baseline_counter_only_warns(self, manifest):
        broken = copy.deepcopy(manifest)
        broken["counters"]["page_faults"] = float("nan")
        findings = obs.diff_manifests(broken, manifest)
        warn = next(f for f in findings if f["name"] == "page_faults")
        assert not warn["regression"]  # recovery must not fail the gate

    def test_nan_sim_time_fails_the_gate(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["simulated_seconds"] = float("nan")
        findings = obs.diff_manifests(manifest, worse)
        assert any(f["regression"] and f["kind"] == "sim_time"
                   for f in findings)

    def test_zero_baseline_sim_time_is_informational(self, manifest):
        zero = copy.deepcopy(manifest)
        zero["simulated_seconds"] = 0.0
        findings = obs.diff_manifests(zero, manifest)
        sim = next(f for f in findings if f["kind"] == "sim_time")
        assert not sim["regression"]
        assert sim["ratio"] is None

    def test_format_findings(self, manifest):
        worse = copy.deepcopy(manifest)
        worse["counters"]["page_faults"] = (
            manifest["counters"]["page_faults"] * 2 + 100)
        text = obs.format_findings(obs.diff_manifests(manifest, worse))
        assert "REGRESSION" in text
        assert "page_faults" in text
        assert obs.format_findings([]) == "no differences beyond thresholds"


class TestResilienceSection:
    @pytest.fixture()
    def faulted_manifest(self):
        from repro.algorithms import count_kcliques
        from repro.resilience import FaultPlan, FaultSpec

        graph = kronecker(7, 4, seed=3)
        with Gamma(graph) as engine:
            engine.platform.install_fault_plan(FaultPlan(
                name="stalls",
                specs=(FaultSpec(kind="pcie_stall", at="*/level:*",
                                 count=0, seconds=1e-4),)))
            count_kcliques(engine, 3)
            return obs.build_manifest(
                engine.platform, system="GAMMA", dataset="K7", task="kcl3")

    def test_absent_without_events(self, manifest):
        assert "resilience" not in manifest

    def test_events_and_rollup_recorded(self, faulted_manifest):
        section = faulted_manifest["resilience"]
        assert section["events"]
        assert all(e["type"] == "fault-injected" for e in section["events"])
        assert section["by_type"]["fault-injected:pcie_stall"] == len(
            section["events"])

    def test_diff_flags_new_event_type_as_regression(self, manifest,
                                                     faulted_manifest):
        from repro.obs.manifest import diff_manifests

        merged = copy.deepcopy(manifest)
        merged["resilience"] = faulted_manifest["resilience"]
        findings = diff_manifests(manifest, merged)
        res = [f for f in findings if f["kind"] == "resilience"]
        assert res and all(f["regression"] for f in res)

    def test_diff_fewer_firings_is_note_not_regression(self, faulted_manifest):
        from repro.obs.manifest import diff_manifests

        calmer = copy.deepcopy(faulted_manifest)
        key = "fault-injected:pcie_stall"
        calmer["resilience"]["by_type"][key] -= 1
        findings = diff_manifests(faulted_manifest, calmer)
        res = [f for f in findings if f["kind"] == "resilience"]
        assert res and not any(f["regression"] for f in res)
