"""`repro serve` / `repro query` driven end-to-end through cli.main,
plus the serve-mode flag-parsing helpers."""

import json
import socket
import threading
import urllib.request

import pytest

from repro import cli
from repro.errors import GammaError


class TestTenantFlagParsing:
    def test_full_spec(self):
        assert cli._parse_tenant_flag("acme:3:9") == ("acme", 3, 9)

    def test_name_only(self):
        assert cli._parse_tenant_flag("acme") == ("acme", None, None)

    def test_empty_fields_mean_defaults(self):
        assert cli._parse_tenant_flag("acme::16") == ("acme", None, 16)

    @pytest.mark.parametrize("flag", [":", ":3", "acme:x", "acme:1:y"])
    def test_bad_specs_rejected(self, flag):
        with pytest.raises(GammaError, match="bad --tenant spec"):
            cli._parse_tenant_flag(flag)


class TestAbridge:
    def test_small_docs_pass_through(self):
        doc = {"a": 1, "b": {"c": 2}}
        assert cli._abridge(doc) == doc

    def test_large_dicts_truncate_with_a_count(self):
        doc = {f"k{i:02d}": i for i in range(10)}
        out = cli._abridge(doc, max_items=6)
        assert out["..."] == "4 more"
        assert len(out) == 7
        assert out["k00"] == 0

    def test_nested_dicts_abridged_recursively(self):
        doc = {"outer": {f"k{i:02d}": i for i in range(9)}}
        assert cli._abridge(doc)["outer"]["..."] == "3 more"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def served():
    """A live `repro serve` process (in a thread) on a free port."""
    port = _free_port()
    rc = {}

    def run():
        rc["serve"] = cli.main([
            "serve", "--port", str(port), "--slots", "1",
            "--preload", "ER", "--tenant", "acme:4:16",
        ])

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{port}"
    for _ in range(300):
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=5):
                break
        except OSError:
            thread.join(timeout=0.1)
            assert thread.is_alive(), "server exited before becoming healthy"
    else:
        raise AssertionError("server never became healthy")
    yield url
    request = urllib.request.Request(
        url + "/v1/shutdown", data=b"{}", method="POST")
    with urllib.request.urlopen(request, timeout=10):
        pass
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert rc["serve"] == 0


class TestQueryCommand:
    def test_streamed_kclique(self, served, capsys):
        rc = cli.main([
            "query", "--url", served, "--task", "kcl", "--k", "3",
            "--dataset", "ER", "--tenant", "acme",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed" in out
        assert "level" in out  # streamed partials were printed
        assert "billed:" in out

    def test_streamed_motifs_output_is_abridged(self, served, capsys):
        rc = cli.main([
            "query", "--url", served, "--task", "motifs", "--edges", "2",
            "--dataset", "ER", "--tenant", "acme",
        ])
        assert rc == 0
        assert "completed" in capsys.readouterr().out

    def test_no_stream_polls_to_completion(self, served, capsys):
        rc = cli.main([
            "query", "--url", served, "--task", "sm", "--query", "1",
            "--dataset", "ER", "--tenant", "acme", "--no-stream",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "queued" in out
        assert "completed" in out

    def test_failed_query_returns_one(self, served, capsys):
        rc = cli.main([
            "query", "--url", served, "--task", "kcl",
            "--dataset", "NO-SUCH", "--tenant", "acme",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "failed" in captured.err

    def test_registered_tenant_quota_visible(self, served):
        with urllib.request.urlopen(served + "/v1/tenants",
                                    timeout=10) as response:
            tenants = json.load(response)
        assert tenants["acme"]["max_inflight"] == 4
        assert tenants["acme"]["max_pending"] == 16
