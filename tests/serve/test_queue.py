"""QueryQueue unit contract: admission, quotas, priority, fair shares."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro.errors import AdmissionError
from repro.serve import QueryQueue, QuerySpec, TenantQuota
from repro.serve.queue import PREEMPTED, QUEUED

FAST = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _spec(tenant="t", priority=0, **kw):
    return QuerySpec(family="kcl", k=3, tenant=tenant, priority=priority,
                     **kw)


# -- admission ----------------------------------------------------------------
def test_auto_registration_uses_default_quota():
    queue = QueryQueue(slots=2)
    state = queue.submit(_spec(tenant="fresh"))
    assert state.status == QUEUED
    assert queue.tenants()["fresh"]["max_inflight"] == 2


def test_unknown_tenant_rejected_when_auto_registration_off():
    queue = QueryQueue(slots=2, auto_register=False)
    queue.register_tenant("known")
    queue.submit(_spec(tenant="known"))
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit(_spec(tenant="stranger"))
    assert excinfo.value.tenant == "stranger"


def test_backlog_quota_enforced():
    queue = QueryQueue(slots=1)
    queue.register_tenant("small", max_pending=2)
    queue.submit(_spec(tenant="small"))
    queue.submit(_spec(tenant="small"))
    with pytest.raises(AdmissionError):
        queue.submit(_spec(tenant="small"))
    # Another tenant's backlog is unaffected.
    queue.submit(_spec(tenant="other"))


def test_submit_emits_queued_record():
    queue = QueryQueue()
    state = queue.submit(_spec(tenant="a", priority=4))
    (record,) = state.stream.records()
    assert record["type"] == "queued"
    assert record["tenant"] == "a" and record["priority"] == 4


# -- priority and ordering ----------------------------------------------------
def test_higher_priority_acquired_first():
    queue = QueryQueue(slots=2)
    low = queue.submit(_spec(tenant="a", priority=0))
    high = queue.submit(_spec(tenant="b", priority=5))
    assert queue.acquire().id == high.id
    assert queue.acquire().id == low.id


def test_fifo_within_priority():
    queue = QueryQueue(slots=4)
    first = queue.submit(_spec(tenant="a"))
    second = queue.submit(_spec(tenant="b"))
    assert queue.acquire().id == first.id
    assert queue.acquire().id == second.id


def test_requeued_query_keeps_its_seq():
    queue = QueryQueue(slots=1)
    victim = queue.submit(_spec(tenant="a"))
    assert queue.acquire().id == victim.id
    late = queue.submit(_spec(tenant="a"))
    queue.requeue(victim)
    assert victim.status == PREEMPTED
    # Within a tenant, the original submission sequence orders the
    # tie-break: the preempted query resumes ahead of its later arrival.
    assert queue.acquire().id == victim.id
    queue.release(victim)
    assert queue.acquire().id == late.id


def test_requeue_does_not_jump_other_tenants():
    # Across tenants the least-recently-scheduled tenant wins the tie:
    # a preempted query cannot starve a tenant that never ran.
    queue = QueryQueue(slots=1)
    victim = queue.submit(_spec(tenant="a"))
    assert queue.acquire().id == victim.id
    other = queue.submit(_spec(tenant="b"))
    queue.requeue(victim)
    assert queue.acquire().id == other.id


def test_ties_prefer_least_loaded_tenant():
    queue = QueryQueue(slots=4)
    queue.submit(_spec(tenant="busy"))
    running = queue.acquire()
    assert running.spec.tenant == "busy"
    queue.submit(_spec(tenant="busy"))
    idle = queue.submit(_spec(tenant="idle"))
    assert queue.acquire().id == idle.id


# -- fairness bound -----------------------------------------------------------
def test_share_bound_limits_a_flooding_tenant():
    queue = QueryQueue(slots=4)
    queue.register_tenant("flood", max_inflight=8)
    queue.register_tenant("meek", max_inflight=8)
    for _ in range(6):
        queue.submit(_spec(tenant="flood"))
    queue.submit(_spec(tenant="meek"))
    picked = []
    while True:
        state = queue.acquire()
        if state is None:
            break
        picked.append(state.spec.tenant)
    # share = 4 // 2 = 2; the flooding tenant is capped at share + 1.
    assert picked.count("flood") == 3
    assert picked.count("meek") == 1


def test_max_inflight_caps_below_share():
    queue = QueryQueue(slots=8)
    queue.register_tenant("capped", max_inflight=1)
    queue.submit(_spec(tenant="capped"))
    queue.submit(_spec(tenant="capped"))
    assert queue.acquire() is not None
    assert queue.acquire() is None  # second blocked by max_inflight=1
    assert queue.pending_count("capped") == 1


def test_preemptor_waiting_semantics():
    queue = QueryQueue(slots=1)
    victim = queue.acquire_or_fail = queue.submit(_spec(tenant="a",
                                                        priority=0))
    assert queue.acquire().id == victim.id
    assert not queue.preemptor_waiting(victim)
    queue.submit(_spec(tenant="b", priority=0))
    assert not queue.preemptor_waiting(victim)  # equal priority never
    queue.submit(_spec(tenant="b", priority=3))
    assert queue.preemptor_waiting(victim)


def test_preemptor_waiting_same_tenant_at_quota_bound():
    # The high-priority query comes from the *victim's own* tenant while
    # the tenant sits at its inflight bound: eligibility must be judged
    # as if the victim had already yielded, else preemption deadlocks.
    queue = QueryQueue(slots=1)
    queue.register_tenant("a", max_inflight=1)
    victim = queue.submit(_spec(tenant="a", priority=0))
    assert queue.acquire().id == victim.id
    queue.submit(_spec(tenant="a", priority=5))
    assert queue.preemptor_waiting(victim)


# -- trace-replay fairness property ------------------------------------------
@FAST
@given(
    submissions=hst.lists(
        hst.tuples(hst.integers(0, 3), hst.integers(0, 3)),
        min_size=1, max_size=24),
    slots=hst.integers(1, 4),
    max_inflight=hst.integers(1, 4),
)
def test_no_tenant_exceeds_share_plus_one(submissions, slots, max_inflight):
    """Replay the queue trace: every acquire respects the fairness bound."""
    queue = QueryQueue(slots=slots, default_quota=TenantQuota(
        max_inflight=max_inflight, max_pending=64))
    for tenant_index, priority in submissions:
        queue.submit(_spec(tenant=f"t{tenant_index}", priority=priority))
    running = []
    while True:
        while len(running) < slots:
            state = queue.acquire()
            if state is None:
                break
            running.append(state)
        if not running:
            break
        queue.release(running.pop(0))
    assert queue.pending_count() == 0 and queue.inflight_count() == 0
    acquires = [ev for ev in queue.trace if ev["event"] == "acquire"]
    assert len(acquires) == len(submissions)
    for event in acquires:
        inflight = event["inflight"][event["tenant"]]
        assert inflight <= event["share"] + 1
        assert inflight <= max_inflight


def test_stats_shape():
    queue = QueryQueue(slots=3)
    queue.submit(_spec(tenant="a"))
    queue.acquire()
    queue.submit(_spec(tenant="b"))
    stats = queue.stats()
    assert stats["slots"] == 3
    assert stats["submitted"] == 2
    assert stats["pending"] == 1
    assert stats["inflight"] == 1
    assert stats["tenants"] == 2
