"""The crash matrix: worker deaths, OOM degradation, bad submissions.

Crash containment (docs/SERVING.md): a fault mid-query affects exactly
that query — retried from its op-journal checkpoint or failed, per its
``on_crash`` policy — while other tenants' queries run to completion and
no shared-memory segment or spill directory is left behind (the autouse
leak sentinel in ``conftest.py`` checks after every test here).

Injected fault plans model *transient* failures: a plan that has killed
a worker once is not re-installed on the retry, so the resumed attempt
runs clean and must reproduce the unfaulted result bit for bit.
"""

import pytest

from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import QuerySpec, Scheduler, ServeConfig
from tests.serve.conftest import stream_payloads

CRASH_PLAN = FaultPlan(
    name="die",
    specs=(FaultSpec(kind="worker_crash", at="*/level:2"),),
).to_dict()

OOM_PLAN = FaultPlan(
    name="tight",
    specs=(FaultSpec(kind="device_oom", at="*/level:2/io:pool:alloc",
                     count=1),),
).to_dict()


def _crash_spec(**overrides):
    base = dict(family="kcl", k=4, dataset="G", tenant="victim", gpus=2,
                executor="process", fault_plan=CRASH_PLAN, fault_shard=1)
    base.update(overrides)
    return QuerySpec(**base)


@pytest.fixture
def scheduler(er_graph):
    sched = Scheduler(ServeConfig(slots=2), graphs={"G": er_graph})
    yield sched
    sched.close()


def test_crash_retry_resumes_bit_identical(er_graph, scheduler):
    clean = scheduler.submit(_crash_spec(tenant="clean", fault_plan=None))
    scheduler.run_until_idle()
    faulted = scheduler.submit(_crash_spec())
    scheduler.run_until_idle()
    assert faulted.status == "completed", faulted.error
    assert faulted.crashes == 1
    kinds = [r["type"] for r in faulted.stream.records()]
    assert "crash" in kinds
    crash = next(r for r in faulted.stream.records()
                 if r["type"] == "crash")
    assert crash["shard"] == 1
    # The retried run reproduces the unfaulted result bit for bit.
    assert faulted.result == clean.result
    assert stream_payloads(faulted, "partial") == \
        stream_payloads(clean, "partial")
    assert faulted.billing["crashes"] == 1


def test_crash_does_not_disturb_other_tenants(er_graph, scheduler):
    bystander = scheduler.submit(QuerySpec(
        family="motifs", num_edges=2, dataset="G", tenant="bystander"))
    faulted = scheduler.submit(_crash_spec())
    scheduler.run_until_idle()
    assert bystander.status == "completed", bystander.error
    assert bystander.crashes == 0
    assert faulted.status == "completed"
    assert scheduler.queue.inflight_count() == 0


def test_on_crash_fail_policy(er_graph, scheduler):
    faulted = scheduler.submit(_crash_spec(on_crash="fail"))
    scheduler.run_until_idle()
    assert faulted.status == "failed"
    assert "crash" in faulted.error
    assert faulted.stream.closed
    assert faulted.billing["status"] == "failed"
    assert faulted.billing["crashes"] == 1


def test_crash_retries_exhausted(er_graph):
    scheduler = Scheduler(ServeConfig(slots=1, crash_retries=0),
                          graphs={"G": er_graph})
    try:
        faulted = scheduler.submit(_crash_spec())
        scheduler.run_until_idle()
        assert faulted.status == "failed"
        assert faulted.crashes == 1
    finally:
        scheduler.close()


def test_broken_pool_is_not_reused(er_graph, scheduler):
    first = scheduler.submit(_crash_spec())
    scheduler.run_until_idle()
    assert first.status == "completed"
    # The crash evicted its pool; a later clean query must still work
    # (on a fresh pool) and the scheduler must not have re-pooled the
    # broken one.
    second = scheduler.submit(_crash_spec(tenant="later", fault_plan=None))
    scheduler.run_until_idle()
    assert second.status == "completed"
    assert second.result == first.result


def test_oom_degradation_policy_completes(er_graph, scheduler):
    rescued = scheduler.submit(QuerySpec(
        family="kcl", k=4, dataset="G", tenant="tight",
        fault_plan=OOM_PLAN, degradation="halve-chunk"))
    scheduler.run_until_idle()
    assert rescued.status == "completed", rescued.error
    clean = scheduler.submit(QuerySpec(
        family="kcl", k=4, dataset="G", tenant="tight"))
    scheduler.run_until_idle()
    assert rescued.result["cliques"] == clean.result["cliques"]


def test_oom_without_policy_fails_only_that_query(er_graph, scheduler):
    doomed = scheduler.submit(QuerySpec(
        family="kcl", k=4, dataset="G", tenant="tight",
        fault_plan=OOM_PLAN))
    bystander = scheduler.submit(QuerySpec(
        family="kcl", k=3, dataset="G", tenant="other"))
    scheduler.run_until_idle()
    assert doomed.status == "failed"
    assert bystander.status == "completed"


def test_unknown_dataset_fails_cleanly(er_graph, scheduler):
    bad = scheduler.submit(QuerySpec(family="kcl", k=3,
                                     dataset="NO-SUCH", tenant="a"))
    good = scheduler.submit(QuerySpec(family="kcl", k=3, dataset="G",
                                      tenant="a"))
    scheduler.run_until_idle()
    assert bad.status == "failed"
    assert "unknown dataset" in bad.error
    assert bad.stream.closed
    assert good.status == "completed"
    # The failed build released its slot.
    assert scheduler.queue.inflight_count() == 0


def test_failed_query_still_bills(er_graph, scheduler):
    bad = scheduler.submit(QuerySpec(family="kcl", k=3,
                                     dataset="NO-SUCH", tenant="a"))
    scheduler.run_until_idle()
    assert bad.billing is not None
    assert bad.billing["status"] == "failed"
    assert bad.billing["error"] == bad.error
    assert bad.billing["tenant"] == "a"
