"""Shared fixtures and helpers for the serve-layer suites.

Every serve test runs under an autouse leak sentinel: after the test,
no shared-memory segments may be live and no ``gamma-spill-*`` scratch
directories may have appeared — crash containment (docs/SERVING.md)
promises a dead worker never strands either.
"""

import glob
import os
import tempfile

import pytest

from repro.graph import generators
from repro.shard import shm


@pytest.fixture(scope="session")
def er_graph():
    """The serve suites' workhorse graph (small, deterministic)."""
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


def spill_dirs():
    return set(glob.glob(
        os.path.join(tempfile.gettempdir(), "gamma-spill-*")))


@pytest.fixture(autouse=True)
def _no_resource_leaks():
    before = spill_dirs()
    yield
    assert shm.live_segments() == (), "leaked shared-memory segments"
    leaked = spill_dirs() - before
    assert not leaked, f"leaked spill dirs: {sorted(leaked)}"


def stream_payloads(state, kind=None):
    """A query's stream records with per-submission identity stripped.

    The parity contracts are over record *payloads*: a resumed run
    interleaves ``preempted``/``resumed`` records (shifting ``seq``),
    and comparing two submissions of the same spec means their query
    ids differ — neither is part of the computation.
    """
    return [
        {key: value for key, value in record.items()
         if key not in ("seq", "query")}
        for record in state.stream.records()
        if kind is None or record["type"] == kind
    ]
