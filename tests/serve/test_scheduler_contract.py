"""The scheduler contract, pinned as properties (docs/SERVING.md):

(a) **Streaming == batch.**  For every completed query, folding the
    streamed per-level partials yields exactly the batch result the same
    driver produces on a standalone engine — and both agree with the
    DFS oracles in ``tests/oracle.py``.
(b) **Fairness.**  Replaying the queue trace of an end-to-end threaded
    run, no tenant is ever scheduled beyond ``share + 1`` in flight.
(c) **Preempt/resume is invisible.**  A query preempted mid-run and
    resumed from its op-journal checkpoint produces the bit-identical
    result payload and partial records of an uninterrupted run.

Each property is pinned on both the serial and the process shard
executor (the Hypothesis corpus runs serial; fixed cases cover process).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro.core.framework import Gamma
from repro.graph import from_edges, sm_query, zipf_labels
from repro.serve import (
    QuerySpec,
    Scheduler,
    ServeConfig,
    fold_partials,
    result_payload,
    run_query,
)
from repro.shard import ShardedGamma
from tests.oracle import (
    kclique_count_ref,
    motif_histogram_ref,
    sm_embedding_count_ref,
)
from tests.serve.conftest import stream_payloads

SLOW = settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])

EXECUTORS = [
    pytest.param("serial", 1, id="local-1gpu"),
    pytest.param("serial", 2, id="serial-2shard"),
    pytest.param("process", 2, id="process-2shard"),
]


@hst.composite
def random_graphs(draw, max_vertices=16, max_edges=40, max_labels=3):
    n = draw(hst.integers(min_value=6, max_value=max_vertices))
    m = draw(hst.integers(min_value=8, max_value=max_edges))
    seed = draw(hst.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    labels = zipf_labels(n, max_labels, seed=seed)
    return from_edges(src, dst, num_vertices=n, labels=labels)


@hst.composite
def query_specs(draw, **overrides):
    family = draw(hst.sampled_from(("kcl", "sm", "motifs", "fpm")))
    params = {}
    if family == "kcl":
        params["k"] = draw(hst.integers(3, 5))
    elif family == "sm":
        params["query"] = draw(hst.integers(1, 3))
        params["symmetry_breaking"] = draw(hst.booleans())
    elif family == "motifs":
        params["num_edges"] = draw(hst.integers(2, 3))
    else:
        params["iterations"] = draw(hst.integers(1, 2))
        params["min_support"] = draw(hst.integers(2, 12))
    params.update(overrides)
    return QuerySpec(family=family, dataset="G", **params)


def batch_payload(graph, spec):
    """The batch oracle: the same driver on a standalone engine."""
    if spec.gpus <= 1:
        engine = Gamma(graph)
    else:
        engine = ShardedGamma(graph, num_shards=spec.gpus,
                              policy=spec.shard_policy, executor="serial")
    try:
        return result_payload(spec, run_query(engine, spec))
    finally:
        engine.close()


def _strip_volatile(payload):
    return {key: value for key, value in payload.items()
            if key != "simulated_seconds"}


def serve_one(graph, spec, on_stage=None, slots=1):
    scheduler = Scheduler(ServeConfig(slots=slots), graphs={"G": graph})
    try:
        state = scheduler.submit(spec)
        scheduler.run_until_idle(on_stage=on_stage)
        return state, stream_payloads(state, "partial")
    finally:
        scheduler.close()


def assert_stream_matches_batch(graph, spec):
    state, partials = serve_one(graph, spec)
    assert state.status == "completed", state.error
    batch = batch_payload(graph, spec)
    assert _strip_volatile(state.result) == _strip_volatile(batch)
    # The fold of the streamed partials is the batch result, field for
    # field — the stream is a prefix view of the computation.
    folded = fold_partials(spec, partials)
    assert folded
    for key, value in folded.items():
        if key in batch:
            assert value == batch[key], key
    # And both agree with the DFS references where one exists.
    if spec.family == "kcl":
        assert batch["cliques"] == kclique_count_ref(graph, spec.k)
    elif spec.family == "motifs":
        ref = motif_histogram_ref(graph, spec.num_edges)
        assert batch["histogram"] == {
            str(code): count for code, count in ref.items()}
    elif spec.family == "sm":
        assert batch["embeddings"] == sm_embedding_count_ref(
            graph, sm_query(spec.query))
    return state


# -- (a) streaming == batch ---------------------------------------------------
@SLOW
@given(graph=random_graphs(), spec=query_specs())
def test_stream_parity_hypothesis(graph, spec):
    assert_stream_matches_batch(graph, spec)


@pytest.mark.parametrize("executor,gpus", EXECUTORS)
@pytest.mark.parametrize("family,params", [
    ("kcl", {"k": 4}),
    ("sm", {"query": 1}),
    ("motifs", {"num_edges": 2}),
    ("fpm", {"iterations": 2, "min_support": 8}),
])
def test_stream_parity_matrix(er_graph, executor, gpus, family, params):
    spec = QuerySpec(family=family, dataset="G", gpus=gpus,
                     executor=executor, **params)
    state = assert_stream_matches_batch(er_graph, spec)
    expected = "local" if gpus <= 1 else executor
    assert state.executor_used == expected


def test_partials_stream_in_level_order(er_graph):
    spec = QuerySpec(family="kcl", k=5, dataset="G")
    _, partials = serve_one(er_graph, spec)
    assert [p["n"] for p in partials] == list(range(1, len(partials) + 1))
    assert [p["level"] for p in partials] == \
        list(range(1, len(partials) + 1))


# -- (b) fairness -------------------------------------------------------------
@pytest.mark.parametrize("executor,gpus", EXECUTORS)
def test_threaded_run_respects_fair_shares(er_graph, executor, gpus):
    scheduler = Scheduler(ServeConfig(slots=2), graphs={"G": er_graph})
    try:
        states = [
            scheduler.submit(QuerySpec(
                family="kcl", k=3, dataset="G", tenant=f"t{t}",
                gpus=gpus, executor=executor))
            for t in range(3) for _ in range(3)
        ]
        scheduler.start()
        assert scheduler.wait_idle(timeout=120.0)
    finally:
        scheduler.close()
    assert all(s.status == "completed" for s in states)
    acquires = [ev for ev in scheduler.queue.trace
                if ev["event"] == "acquire"]
    assert len(acquires) >= len(states)
    for event in acquires:
        inflight = event["inflight"][event["tenant"]]
        assert inflight <= event["share"] + 1
        assert inflight <= 2  # the default per-tenant max_inflight


# -- (c) preempt/resume bit-parity --------------------------------------------
def _preemption_run(graph, spec, preempt_stage):
    """Run ``spec`` at low priority; inject a high-priority query at
    ``preempt_stage`` (or never, when None)."""
    scheduler = Scheduler(ServeConfig(slots=1), graphs={"G": graph})
    try:
        low = scheduler.submit(spec)
        fired = []

        def on_stage(state, stage, info):
            if (preempt_stage is not None and not fired
                    and state.id == low.id and stage == preempt_stage):
                fired.append(stage)
                scheduler.submit(QuerySpec(
                    family="motifs", num_edges=2, dataset="G",
                    tenant="urgent", priority=9))

        scheduler.run_until_idle(on_stage=on_stage)
        states = scheduler.queue.states()
        return low, stream_payloads(low, "partial"), states
    finally:
        scheduler.close()


@SLOW
@given(graph=random_graphs(), preempt_stage=hst.integers(1, 3),
       k=hst.integers(4, 5))
def test_preempt_resume_bit_identical_hypothesis(graph, preempt_stage, k):
    spec = QuerySpec(family="kcl", k=k, dataset="G", tenant="lo",
                     priority=0)
    base, base_partials, _ = _preemption_run(graph, spec, None)
    assert base.status == "completed"
    bumped, bumped_partials, states = _preemption_run(
        graph, spec, preempt_stage)
    assert bumped.status == "completed"
    assert bumped.preemptions >= 1 and bumped.resumes >= 1
    assert bumped.result == base.result  # bit-identical, clock included
    assert bumped_partials == base_partials
    # The preemptor ran to completion first.
    urgent = next(s for s in states if s.spec.tenant == "urgent")
    assert urgent.status == "completed"
    assert urgent.finished_mono <= bumped.finished_mono


@pytest.mark.parametrize("executor,gpus", EXECUTORS)
def test_preempt_resume_bit_identical_matrix(er_graph, executor, gpus):
    spec = QuerySpec(family="kcl", k=5, dataset="G", tenant="lo",
                     priority=0, gpus=gpus, executor=executor)
    base, base_partials, _ = _preemption_run(er_graph, spec, None)
    bumped, bumped_partials, _ = _preemption_run(er_graph, spec, 2)
    assert base.status == bumped.status == "completed"
    assert bumped.preemptions >= 1
    assert bumped.result == base.result
    assert bumped_partials == base_partials
    assert bumped.billing["simulated_seconds"] == \
        base.billing["simulated_seconds"]


def test_preemption_disabled_never_yields(er_graph):
    scheduler = Scheduler(ServeConfig(slots=1, preemption=False),
                          graphs={"G": er_graph})
    try:
        low = scheduler.submit(QuerySpec(family="kcl", k=5, dataset="G",
                                         tenant="lo"))

        def on_stage(state, stage, info):
            if state.id == low.id and stage == 1:
                if scheduler.queue.pending_count() == 0:
                    scheduler.submit(QuerySpec(
                        family="motifs", num_edges=2, dataset="G",
                        tenant="hi", priority=9))

        scheduler.run_until_idle(on_stage=on_stage)
        assert low.preemptions == 0 and low.status == "completed"
    finally:
        scheduler.close()
