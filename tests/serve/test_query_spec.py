"""QuerySpec validation, aliasing, and the partial-fold reductions."""

import pytest

from repro.errors import ExecutionError
from repro.serve import FAMILIES, QuerySpec, fold_partials


def test_round_trip():
    spec = QuerySpec(family="motifs", tenant="acme", priority=3,
                     dataset="CL", gpus=2, num_edges=3)
    assert QuerySpec.from_dict(spec.to_dict()) == spec


def test_family_aliases_normalize():
    assert QuerySpec.from_dict({"family": "kclique"}).family == "kcl"
    assert QuerySpec.from_dict({"family": "clique"}).family == "kcl"
    assert QuerySpec.from_dict({"family": "motif"}).family == "motifs"
    assert QuerySpec.from_dict({"family": "subgraph"}).family == "sm"
    assert QuerySpec.from_dict({"family": "match"}).family == "sm"


@pytest.mark.parametrize("doc", [
    {"family": "pagerank"},
    {"family": "kcl", "k": 0},
    {"family": "fpm", "iterations": 0},
    {"family": "motifs", "num_edges": 0},
    {"family": "kcl", "gpus": 0},
    {"family": "kcl", "on_crash": "shrug"},
    {"family": "kcl", "no_such_field": 1},
    "not a dict",
])
def test_invalid_specs_rejected(doc):
    with pytest.raises(ExecutionError):
        QuerySpec.from_dict(doc)


def test_params_are_family_relevant():
    assert QuerySpec(family="kcl", k=5).params() == {"k": 5}
    assert QuerySpec(family="sm", query=2).params() == {
        "query": 2, "symmetry_breaking": False}
    assert QuerySpec(family="motifs", num_edges=3).params() == {
        "num_edges": 3}
    assert set(QuerySpec(family="fpm").params()) == {
        "iterations", "min_support", "support_metric"}
    assert set(FAMILIES) == {"kcl", "sm", "motifs", "fpm"}


def test_fold_partials_empty_and_missing_stages():
    assert fold_partials(QuerySpec(family="kcl"), []) == {}
    # A motifs stream cut off before aggregation folds to nothing.
    assert fold_partials(
        QuerySpec(family="motifs"),
        [{"stage": "extend", "embeddings": 7}]) == {}
    assert fold_partials(
        QuerySpec(family="fpm"),
        [{"stage": "seed", "embeddings": 7}]) == {}


def test_fold_partials_reductions():
    kcl = fold_partials(QuerySpec(family="kcl"), [
        {"stage": "seed", "embeddings": 9},
        {"stage": "extend", "embeddings": 4},
    ])
    assert kcl == {"cliques": 4}
    fpm = fold_partials(QuerySpec(family="fpm"), [
        {"stage": "seed", "embeddings": 30},
        {"stage": "filter", "frequent": 2, "patterns": {"5": 12}},
        {"stage": "filter", "frequent": 1, "patterns": {"9": 11}},
    ])
    assert fpm == {"patterns": {"9": 11}, "frequent_per_level": [2, 1]}
