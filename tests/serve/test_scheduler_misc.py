"""Scheduler surface outside the contract suites: dict specs, lazy
dataset loading, ``auto`` plans through the shared cache, manifest/
billing emission, lifecycle edges, and the pickle contract."""

import json
import os

import pytest

from repro.errors import ExecutionError, GammaError
from repro.serve import Scheduler, ServeConfig
from repro.serve.queue import COMPLETED, FAILED


def _spec(**overrides):
    base = {"family": "kcl", "k": 3, "dataset": "G", "tenant": "t"}
    base.update(overrides)
    return base


class TestSubmissionSurface:
    def test_submit_accepts_plain_dicts(self, er_graph):
        with Scheduler(ServeConfig(slots=1), graphs={"G": er_graph}) as s:
            state = s.submit(_spec())
            s.run_until_idle()
            assert state.status == COMPLETED
            assert state.result["cliques"] > 0

    def test_datasets_load_lazily_and_cache(self):
        """No preregistered graph: the catalog loads on first use."""
        with Scheduler(ServeConfig(slots=1)) as s:
            first = s.submit(_spec(dataset="ER"))
            second = s.submit(_spec(dataset="ER"))
            s.run_until_idle()
            assert first.status == COMPLETED
            assert second.status == COMPLETED
            assert first.result == second.result
            assert "ER" in s._graphs  # cached after the first load


class TestAutoPlans:
    @pytest.mark.parametrize("overrides", [
        {"family": "kcl", "k": 3},
        {"family": "motifs", "num_edges": 2},
        {"family": "fpm", "iterations": 1, "min_support": 2},
        {"family": "sm", "query": 1},
    ])
    def test_auto_plan_matches_baseline(self, er_graph, overrides):
        with Scheduler(ServeConfig(slots=1), graphs={"G": er_graph}) as s:
            auto = s.submit(_spec(plan="auto", **overrides))
            base = s.submit(_spec(plan="baseline", **overrides))
            s.run_until_idle()
            assert auto.status == COMPLETED
            assert base.status == COMPLETED
            auto_payload = dict(auto.result)
            base_payload = dict(base.result)
            # An auto plan may reorder the match, shifting clock and
            # footprint; the mined answer itself must be identical.
            for volatile in ("simulated_seconds", "peak_memory_bytes"):
                auto_payload.pop(volatile, None)
                base_payload.pop(volatile, None)
            assert auto_payload == base_payload

    def test_plan_cache_is_shared_and_closed(self, er_graph):
        s = Scheduler(ServeConfig(slots=1), graphs={"G": er_graph})
        try:
            cache = s.plan_cache()
            assert s.plan_cache() is cache
        finally:
            s.close()
        assert s._plan_cache is None  # close() released the connection


class TestManifestEmission:
    def test_billing_and_manifest_files(self, tmp_path, er_graph):
        mdir = str(tmp_path / "records")
        config = ServeConfig(slots=1, manifest_dir=mdir)
        with Scheduler(config, graphs={"G": er_graph}) as s:
            local = s.submit(_spec())
            sharded = s.submit(_spec(
                family="motifs", num_edges=2, gpus=2, executor="serial"))
            s.run_until_idle()
            assert local.status == COMPLETED
            assert sharded.status == COMPLETED
            for state in (local, sharded):
                billing_path = os.path.join(
                    mdir, f"billing-{state.id:06d}.json")
                with open(billing_path, encoding="utf-8") as handle:
                    billing = json.load(handle)
                assert billing["schema"] == "gamma-billing/1"
                assert billing["tenant"] == "t"
                assert billing["status"] == COMPLETED
                manifest_path = os.path.join(
                    mdir, f"query-{state.id:06d}.json")
                with open(manifest_path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
                assert manifest["query"]["id"] == state.id
                assert manifest["query"]["tenant"] == "t"

    def test_failed_query_still_writes_billing(self, tmp_path, er_graph):
        mdir = str(tmp_path / "records")
        config = ServeConfig(slots=1, manifest_dir=mdir)
        with Scheduler(config, graphs={"G": er_graph}) as s:
            state = s.submit(_spec(dataset="NO-SUCH"))
            s.run_until_idle()
            assert state.status == FAILED
            path = os.path.join(mdir, f"billing-{state.id:06d}.json")
            with open(path, encoding="utf-8") as handle:
                assert json.load(handle)["status"] == FAILED


class TestLifecycleEdges:
    def test_run_until_idle_step_cap(self, er_graph):
        with Scheduler(ServeConfig(slots=1), graphs={"G": er_graph}) as s:
            s.submit(_spec())
            s.submit(_spec())
            with pytest.raises(ExecutionError, match="exceeded"):
                s.run_until_idle(max_steps=1)
            s.run_until_idle()  # drain the rest

    def test_start_is_idempotent(self, er_graph):
        with Scheduler(ServeConfig(slots=1), graphs={"G": er_graph}) as s:
            s.start()
            threads = list(s._threads)
            s.start()
            assert s._threads == threads
            assert s.wait_idle(timeout=30.0)
            s.stop()

    def test_wait_idle_times_out_with_pending_work(self, er_graph):
        with Scheduler(ServeConfig(slots=1), graphs={"G": er_graph}) as s:
            s.submit(_spec())  # no workers started: stays pending
            assert s.wait_idle(timeout=0.05) is False
            s.run_until_idle()

    def test_return_pool_after_close_terminates(self, er_graph):
        class FakePool:
            _broken = False
            _procs = [object()]
            pool_reuses = 0
            terminated = 0

            def terminate(self):
                self.terminated += 1

        s = Scheduler(ServeConfig(slots=1), graphs={"G": er_graph})
        s.close()
        pool = FakePool()
        s._return_pool(("G", 2), pool)
        assert pool.terminated == 1
        assert s.stats()["pools"] == 0


class TestEngineBuildFailure:
    def test_pool_terminated_when_engine_construction_fails(
            self, er_graph, monkeypatch):
        import repro.serve.scheduler as sched_mod

        def boom(*args, **kwargs):
            raise GammaError("forced construction failure")

        config = ServeConfig(slots=1, executor="process")
        with Scheduler(config, graphs={"G": er_graph}) as s:
            monkeypatch.setattr(sched_mod, "ShardedGamma", boom)
            state = s.submit(_spec(gpus=2))
            s.run_until_idle()
            assert state.status == FAILED
            assert "forced construction failure" in state.error
            assert s.stats()["pools"] == 0  # broken checkout not re-pooled


class TestPickleContract:
    def test_getstate_drops_the_plan_cache(self, er_graph):
        s = Scheduler(ServeConfig(slots=1), graphs={"G": er_graph})
        try:
            s.plan_cache()
            state = s.__getstate__()
            assert state["_plan_cache"] is None
            assert s._plan_cache is not None  # live object untouched
            clone = object.__new__(Scheduler)
            clone.__setstate__(state)
            assert clone._plan_cache is None
        finally:
            s.close()
