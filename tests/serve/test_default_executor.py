"""serve_default_executor: core-count gated, env-var overridable."""

import pytest

from repro.serve import QuerySpec, Scheduler, ServeConfig
from repro.shard import SERVE_MIN_CORES, serve_default_executor
from repro.shard.executor import EXECUTOR_ENV_VAR


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)


@pytest.mark.parametrize("cores,expected", [
    (1, "serial"),
    (2, "serial"),
    (3, "serial"),
    (4, "process"),
    (8, "process"),
    (64, "process"),
])
def test_core_count_gate(cores, expected):
    assert SERVE_MIN_CORES == 4
    assert serve_default_executor(cpu_count=cores) == expected


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
    assert serve_default_executor(cpu_count=64) == "serial"
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
    assert serve_default_executor(cpu_count=1) == "process"


def test_real_host_resolves_to_known_backend():
    assert serve_default_executor() in ("serial", "process")


def test_scheduler_resolution_order(er_graph, monkeypatch):
    """spec.executor > ServeConfig.executor > serve_default_executor."""
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
    scheduler = Scheduler(ServeConfig(slots=1), graphs={"G": er_graph})
    try:
        # Env default: serial.
        defaulted = scheduler.submit(QuerySpec(family="kcl", k=3,
                                               dataset="G", gpus=2))
        # The per-query spec overrides the environment.
        pinned = scheduler.submit(QuerySpec(family="kcl", k=3, dataset="G",
                                            gpus=2, executor="process"))
        scheduler.run_until_idle()
        assert defaulted.status == pinned.status == "completed"
        assert defaulted.executor_used == "serial"
        assert pinned.executor_used == "process"
        assert defaulted.result["cliques"] == pinned.result["cliques"]
    finally:
        scheduler.close()


def test_config_executor_beats_env(er_graph, monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
    scheduler = Scheduler(ServeConfig(slots=1, executor="serial"),
                          graphs={"G": er_graph})
    try:
        state = scheduler.submit(QuerySpec(family="kcl", k=3, dataset="G",
                                           gpus=2))
        scheduler.run_until_idle()
        assert state.status == "completed"
        assert state.executor_used == "serial"
    finally:
        scheduler.close()
