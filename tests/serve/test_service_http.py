"""The HTTP front end: endpoints, streaming, error mapping, shutdown."""

import json
import threading
import urllib.request

import pytest

from repro.errors import AdmissionError, ExecutionError
from repro.serve import (
    MiningService,
    QuerySpec,
    Scheduler,
    ServeClient,
    ServeConfig,
)


@pytest.fixture
def service(er_graph):
    scheduler = Scheduler(ServeConfig(slots=2), graphs={"G": er_graph})
    svc = MiningService(scheduler, port=0).start()
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture
def client(service):
    return ServeClient(service.url, timeout=60.0)


def test_health_and_stats(client):
    health = client.health()
    assert health["ok"] is True
    assert health["slots"] == 2
    stats = client.stats()
    assert stats["submitted"] == 0
    assert "idle_workers" in stats


def test_streamed_query_roundtrip(client):
    doc = client.run(QuerySpec(family="kcl", k=3, dataset="G",
                               tenant="acme"))
    assert doc["status"] == "completed"
    kinds = [record["type"] for record in doc["records"]]
    assert kinds[0] == "queued"
    assert kinds[1] == "started"
    assert kinds[-2] == "result"
    assert kinds[-1] == "billing"
    assert kinds.count("partial") == 3  # one per k-clique level
    assert doc["result"]["cliques"] == doc["records"][-2]["cliques"]
    billing = doc["records"][-1]
    assert billing["tenant"] == "acme" and billing["status"] == "completed"


def test_nowait_submit_and_poll(client):
    ticket = client.submit_nowait(QuerySpec(family="motifs", num_edges=2,
                                            dataset="G", tenant="poll"))
    assert ticket["status"] in ("queued", "running", "completed")
    deadline = 60.0
    import time
    start = time.monotonic()
    while True:
        doc = client.query(ticket["query"])
        if doc["status"] in ("completed", "failed"):
            break
        assert time.monotonic() - start < deadline
        time.sleep(0.05)
    assert doc["status"] == "completed"
    assert doc["result"]["total_instances"] >= 0
    assert doc["billing"]["family"] == "motifs"


def test_tenants_endpoint(client, service):
    service.scheduler.queue.register_tenant("vip", max_inflight=4)
    tenants = client.tenants()
    assert tenants["vip"]["max_inflight"] == 4
    assert tenants["vip"]["inflight"] == 0


def test_error_mapping(client, service):
    # Malformed spec -> 400 surfaced as ExecutionError.
    with pytest.raises(ExecutionError, match="400"):
        client.run({"family": "pagerank"})
    with pytest.raises(ExecutionError, match="400"):
        client.run({"bogus_field": 1})
    # Unknown paths and ids.
    with pytest.raises(ExecutionError, match="404"):
        client._get("/v1/nope")
    with pytest.raises(ExecutionError, match="404"):
        client.query(999999)
    with pytest.raises(ExecutionError, match="400"):
        client._get("/v1/query/not-a-number")
    # Quota exhaustion -> 429 surfaced as AdmissionError.
    service.scheduler.queue.register_tenant("full", max_pending=0)
    with pytest.raises(AdmissionError) as excinfo:
        client.run(QuerySpec(family="kcl", k=3, dataset="G",
                             tenant="full"))
    assert excinfo.value.tenant == "full"


def test_get_errors_are_json(service):
    # _get raises via urllib on 4xx; check the raw body shape instead.
    try:
        urllib.request.urlopen(service.url + "/v1/query/999999", timeout=10)
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
        assert "error" in json.loads(exc.read().decode("utf-8"))
    else:  # pragma: no cover
        pytest.fail("expected HTTP 404")


def test_concurrent_tenants_over_http(client):
    results = {}
    errors = []

    def worker(tenant):
        try:
            doc = client.run(QuerySpec(family="kcl", k=4, dataset="G",
                                       tenant=tenant))
            results[tenant] = doc
        except Exception as exc:  # pragma: no cover
            errors.append((tenant, exc))

    threads = [threading.Thread(target=worker, args=(f"tenant-{i}",))
               for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    assert len(results) == 3
    counts = {doc["result"]["cliques"] for doc in results.values()}
    assert len(counts) == 1  # same query, same answer, all tenants
    stats = client.stats()
    assert stats["completed"] >= 3


def test_shutdown_endpoint_stops_serve_forever(er_graph):
    scheduler = Scheduler(ServeConfig(slots=1), graphs={"G": er_graph})
    svc = MiningService(scheduler, port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(svc.url, timeout=30.0)
    deadline = 30
    import time
    start = time.monotonic()
    while True:
        try:
            client.health()
            break
        except OSError:
            assert time.monotonic() - start < deadline
            time.sleep(0.05)
    assert client.shutdown()["stopping"] is True
    thread.join(timeout=30)
    assert not thread.is_alive()
