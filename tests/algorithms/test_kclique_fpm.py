"""Tests for k-clique, triangle, FPM and motif drivers."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    motif_count,
    triangle_count,
)
from repro.core import Gamma
from repro.errors import ExecutionError, InvalidPatternError
from repro.graph import (
    clique_graph,
    count_cliques,
    cycle_graph,
    from_networkx,
    relabel_vertices,
    star,
    zipf_labels,
)


@pytest.fixture(scope="module")
def medium_graph():
    G = nx.gnm_random_graph(50, 170, seed=23)
    g = from_networkx(G)
    return relabel_vertices(g, zipf_labels(50, 3, seed=2))


class TestKClique:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_matches_oracle(self, medium_graph, k):
        with Gamma(medium_graph) as engine:
            result = count_kcliques(engine, k)
        assert result.cliques == count_cliques(medium_graph, k)

    def test_k1_counts_vertices(self, medium_graph):
        with Gamma(medium_graph) as engine:
            assert count_kcliques(engine, 1).cliques == medium_graph.num_vertices

    def test_complete_graph(self):
        g = clique_graph(7)
        with Gamma(g) as engine:
            assert count_kcliques(engine, 4).cliques == 35  # C(7,4)

    def test_triangle_free_graph(self):
        g = cycle_graph(10)
        with Gamma(g) as engine:
            assert count_kcliques(engine, 3).cliques == 0

    def test_invalid_k(self, medium_graph):
        with Gamma(medium_graph) as engine:
            with pytest.raises(InvalidPatternError):
                count_kcliques(engine, 0)

    def test_keep_table_rows_are_cliques(self, medium_graph):
        with Gamma(medium_graph) as engine:
            result, table = count_kcliques(engine, 3, keep_table=True)
            mats = table.materialize()
        assert len(mats) == result.cliques
        for a, b, c in mats.tolist():
            assert a < b < c  # canonical ascending order
            assert medium_graph.has_edge(a, b)
            assert medium_graph.has_edge(b, c)
            assert medium_graph.has_edge(a, c)


class TestTriangle:
    def test_equals_k3(self, medium_graph):
        with Gamma(medium_graph) as engine:
            tri = triangle_count(engine)
        assert tri.triangles == count_cliques(medium_graph, 3)

    def test_star_has_none(self):
        with Gamma(star(10)) as engine:
            assert triangle_count(engine).triangles == 0


class TestFPM:
    def test_level1_counts_label_pairs(self, tiny_graph):
        with Gamma(tiny_graph) as engine:
            result = frequent_pattern_mining(engine, 1, 1)
        assert sum(result.patterns.values()) == tiny_graph.num_edges

    def test_min_support_monotone(self, medium_graph):
        counts = []
        for sup in (1, 3, 8):
            with Gamma(medium_graph) as engine:
                result = frequent_pattern_mining(engine, 2, sup)
            counts.append(len(result.patterns))
        assert counts[0] >= counts[1] >= counts[2]

    def test_antimonotone_instances(self, medium_graph):
        """Instances of surviving level-2 patterns extend only level-1
        frequent edges (Apriori over instance counts)."""
        with Gamma(medium_graph) as engine:
            result = frequent_pattern_mining(engine, 2, 5)
        assert all(v >= 5 for v in result.patterns.values())
        assert result.frequent_per_level[0] <= len(result.patterns)

    def test_zero_iterations_rejected(self, medium_graph):
        with Gamma(medium_graph) as engine:
            with pytest.raises(ExecutionError):
                frequent_pattern_mining(engine, 0, 1)

    def test_metadata(self, tiny_graph):
        with Gamma(tiny_graph) as engine:
            result = frequent_pattern_mining(engine, 2, 1)
        assert result.iterations == 2
        assert result.min_support == 1
        assert len(result.frequent_per_level) == 2
        assert result.simulated_seconds > 0


class TestMotif:
    def test_two_edge_motifs_are_wedges(self, medium_graph):
        deg = medium_graph.degrees
        wedges = int((deg * (deg - 1) // 2).sum())
        with Gamma(medium_graph) as engine:
            result = motif_count(engine, 2)
        assert result.total_instances == wedges

    def test_three_edge_motifs_brute_force(self, tiny_graph):
        edges = list(tiny_graph.edges())
        expected = 0
        for combo in itertools.combinations(range(len(edges)), 3):
            sub = nx.Graph([edges[i] for i in combo])
            if sub.number_of_edges() == 3 and nx.is_connected(sub):
                expected += 1
        with Gamma(tiny_graph) as engine:
            result = motif_count(engine, 3)
        assert result.total_instances == expected

    def test_histogram_separates_patterns(self):
        """A triangle-plus-tail graph has both wedge classes (by labels)."""
        with Gamma(clique_graph(4)) as engine:
            result = motif_count(engine, 2)
        # K4 unlabeled: all wedges isomorphic -> a single pattern
        assert len(result.histogram) == 1
        assert result.total_instances == 12  # 4 * C(3,2)

    def test_invalid_size(self, tiny_graph):
        with Gamma(tiny_graph) as engine:
            with pytest.raises(ExecutionError):
                motif_count(engine, 0)
