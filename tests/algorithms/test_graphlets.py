"""Tests for the graphlet (induced connected subgraph) census."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import graphlet_census
from repro.baselines import PangolinGPU, Peregrine
from repro.core import Gamma
from repro.errors import ExecutionError
from repro.graph import (
    clique_graph,
    cycle_graph,
    from_networkx,
    relabel_vertices,
    star,
    triangle_count_exact,
    wedge_count,
    zipf_labels,
)
from repro.graph.canonical import canonical_code_int


def brute_force(G, labels, k):
    hist = {}
    for combo in itertools.combinations(G.nodes(), k):
        sub = G.subgraph(combo)
        if not nx.is_connected(sub):
            continue
        index = {v: i for i, v in enumerate(combo)}
        edges = [(index[u], index[v]) for u, v in sub.edges()]
        lab = [int(labels[v]) for v in combo]
        code = canonical_code_int(edges, lab)
        hist[code] = hist.get(code, 0) + 1
    return hist


@pytest.fixture(scope="module")
def labeled_graph():
    G = nx.gnm_random_graph(26, 60, seed=17)
    labels = zipf_labels(26, 2, seed=5)
    return G, labels, relabel_vertices(from_networkx(G), labels)


class TestCensusCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_brute_force(self, labeled_graph, k):
        G, labels, g = labeled_graph
        with Gamma(g) as engine:
            result = graphlet_census(engine, k)
        assert result.histogram == brute_force(G, labels, k)

    def test_k2_is_edge_count(self, labeled_graph):
        __, __, g = labeled_graph
        with Gamma(g) as engine:
            assert graphlet_census(engine, 2).total == g.num_edges

    def test_k3_decomposes_into_induced_wedges_and_triangles(self):
        g = from_networkx(nx.gnm_random_graph(30, 80, seed=2))
        with Gamma(g) as engine:
            result = graphlet_census(engine, 3)
        triangles = triangle_count_exact(g)
        induced_wedges = wedge_count(g) - 3 * triangles
        assert result.total == triangles + induced_wedges
        assert sorted(result.histogram.values()) == sorted(
            v for v in (triangles, induced_wedges) if v
        )

    def test_complete_graph_single_class(self):
        with Gamma(clique_graph(6)) as engine:
            result = graphlet_census(engine, 4)
        assert len(result.histogram) == 1
        assert result.total == 15  # C(6,4)

    def test_cycle_graphlets(self):
        with Gamma(cycle_graph(8)) as engine:
            result = graphlet_census(engine, 3)
        # only induced paths of length 2 exist, one per center vertex
        assert result.total == 8
        assert len(result.histogram) == 1

    def test_star_has_no_k4_beyond_claw(self):
        with Gamma(star(5)) as engine:
            result = graphlet_census(engine, 4)
        assert len(result.histogram) == 1  # the claw (star-3)
        assert result.total == 10  # C(5,3)

    def test_invalid_k(self, labeled_graph):
        __, __, g = labeled_graph
        with Gamma(g) as engine:
            with pytest.raises(ExecutionError):
                graphlet_census(engine, 1)
            with pytest.raises(ExecutionError):
                graphlet_census(engine, 6)


class TestCensusOnBaselines:
    @pytest.mark.parametrize("engine_cls", [PangolinGPU, Peregrine])
    def test_engines_agree(self, labeled_graph, engine_cls):
        __, __, g = labeled_graph
        with Gamma(g) as reference:
            expected = graphlet_census(reference, 3).histogram
        with engine_cls(g) as engine:
            assert graphlet_census(engine, 3).histogram == expected

    def test_metadata(self, labeled_graph):
        __, __, g = labeled_graph
        with Gamma(g) as engine:
            result = graphlet_census(engine, 3)
        assert result.k == 3
        assert result.simulated_seconds > 0
        assert result.peak_memory_bytes > 0
