"""Tests for WOJ and binary-join subgraph matching against the oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.core import Gamma
from repro.graph import (
    Pattern,
    clique,
    count_isomorphisms,
    cycle,
    diamond,
    from_networkx,
    house,
    path,
    relabel_vertices,
    sm_query,
    tailed_triangle,
    triangle,
    zipf_labels,
)
from repro.algorithms import match_pattern, match_pattern_binary


@pytest.fixture(scope="module")
def medium_graph():
    G = nx.gnm_random_graph(70, 240, seed=13)
    g = from_networkx(G)
    return relabel_vertices(g, zipf_labels(70, 4, seed=5))


ALL_PATTERNS = [
    triangle(), path(2), path(3), cycle(4), diamond(), tailed_triangle(),
    clique(4), house(), sm_query(1), sm_query(2), sm_query(3),
]


class TestWOJ:
    @pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=lambda p: p.name)
    def test_matches_oracle(self, medium_graph, pattern):
        with Gamma(medium_graph) as engine:
            result = match_pattern(engine, pattern)
        assert result.embeddings == count_isomorphisms(medium_graph, pattern)

    def test_unique_subgraphs_divides_automorphisms(self, medium_graph):
        pattern = triangle()
        with Gamma(medium_graph) as engine:
            result = match_pattern(engine, pattern)
        assert result.unique_subgraphs * 6 == result.embeddings

    def test_no_matches(self, medium_graph):
        pattern = Pattern([(0, 1)], labels=[3, 77], name="impossible")
        with Gamma(medium_graph) as engine:
            result = match_pattern(engine, pattern)
        assert result.embeddings == 0

    def test_keep_table_returns_embeddings(self, medium_graph):
        pattern = sm_query(1)
        with Gamma(medium_graph) as engine:
            result, table = match_pattern(engine, pattern, keep_table=True)
            mats = table.materialize()
        assert len(mats) == result.embeddings
        order = pattern.matching_order()
        for row in mats.tolist():
            # row columns follow the matching order; verify all query edges
            assignment = {order[i]: row[i] for i in range(len(order))}
            for u, v in pattern.edges:
                assert medium_graph.has_edge(assignment[u], assignment[v])

    def test_result_metadata(self, medium_graph):
        with Gamma(medium_graph) as engine:
            result = match_pattern(engine, sm_query(2))
        assert result.pattern == "q2-labeled-square"
        assert result.simulated_seconds > 0
        assert result.peak_memory_bytes > 0


class TestBinaryJoin:
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), path(2), cycle(4), sm_query(1), sm_query(2), diamond()],
        ids=lambda p: p.name,
    )
    def test_matches_oracle(self, medium_graph, pattern):
        with Gamma(medium_graph) as engine:
            result = match_pattern_binary(engine, pattern)
        assert result.embeddings == count_isomorphisms(medium_graph, pattern)

    def test_agrees_with_woj(self, medium_graph):
        pattern = sm_query(3)
        with Gamma(medium_graph) as e1:
            woj = match_pattern(e1, pattern)
        with Gamma(medium_graph) as e2:
            binary = match_pattern_binary(e2, pattern)
        assert woj.embeddings == binary.embeddings

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "pattern", [sm_query(1), sm_query(2), cycle(4)],
        ids=lambda p: p.name,
    )
    def test_sharded_row_realignment(self, medium_graph, pattern,
                                     num_shards):
        """Regression: the e-ET seed's host-side row re-alignment must
        honor the plan's edge orientation per *table row*, not per sorted
        position.  A sharded seed interleaves shard-local row blocks, so
        the old double-argsort alignment silently attributed forward
        orientations to the wrong rows and dropped or duplicated
        embeddings on >1 shard."""
        from repro.shard import ShardedGamma

        with Gamma(medium_graph) as single:
            expected = match_pattern_binary(single, pattern).embeddings
        engine = ShardedGamma(medium_graph, num_shards=num_shards)
        try:
            got = match_pattern_binary(engine, pattern).embeddings
        finally:
            engine.close()
        assert got == expected


class TestLabeledSemantics:
    def test_unlabeled_pattern_ignores_labels(self, medium_graph):
        unlabeled = relabel_vertices(
            medium_graph, np.zeros(medium_graph.num_vertices, dtype=np.int64)
        )
        with Gamma(medium_graph) as a, Gamma(unlabeled) as b:
            ra = match_pattern(a, triangle())
            rb = match_pattern(b, triangle())
        assert ra.embeddings == rb.embeddings

    def test_labels_prune(self, medium_graph):
        with Gamma(medium_graph) as a, Gamma(medium_graph) as b:
            all_tri = match_pattern(a, triangle()).embeddings
            labeled = match_pattern(b, sm_query(1)).embeddings
        assert labeled < all_tri
