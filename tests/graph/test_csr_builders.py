"""Tests for CSR construction and basic graph queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.errors import InvalidGraphError
from repro.graph import CSRGraph, from_edge_list, from_edges, relabel_vertices


class TestFromEdges:
    def test_basic_shape(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 5

    def test_degrees(self, tiny_graph):
        assert tiny_graph.degrees.tolist() == [2, 2, 3, 2, 1]

    def test_self_loops_removed(self):
        g = from_edge_list([(0, 0), (0, 1), (1, 1)])
        assert g.num_edges == 1

    def test_duplicates_collapse(self):
        g = from_edge_list([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_adjacency_sorted(self, tiny_graph):
        for v in range(tiny_graph.num_vertices):
            nbrs = tiny_graph.neighbors_of(v)
            assert (np.diff(nbrs) > 0).all()

    def test_isolated_vertices_allowed(self):
        g = from_edge_list([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0
        assert len(g.neighbors_of(4)) == 0

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(InvalidGraphError):
            from_edge_list([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(InvalidGraphError):
            from_edges(np.array([-1]), np.array([2]))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(InvalidGraphError):
            from_edges(np.array([1, 2]), np.array([3]))

    def test_edge_ids_consistent_both_directions(self, tiny_graph):
        # Edge (0, 1) must carry the same id in both adjacency lists.
        g = tiny_graph
        for v in range(g.num_vertices):
            for nbr, eid in zip(g.neighbors_of(v), g.incident_edges_of(v)):
                u, w = g.edge_src[eid], g.edge_dst[eid]
                assert {u, w} == {v, nbr}

    def test_canonical_endpoints(self, tiny_graph):
        assert (tiny_graph.edge_src < tiny_graph.edge_dst).all()

    @given(
        hst.lists(
            hst.tuples(
                hst.integers(min_value=0, max_value=20),
                hst.integers(min_value=0, max_value=20),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_csr_invariants(self, edges):
        g = from_edge_list(edges, num_vertices=21)
        # CSR accounting: adjacency slot count = 2 * undirected edges.
        assert len(g.neighbors) == 2 * g.num_edges
        assert g.offsets[-1] == len(g.neighbors)
        # degree sum = 2|E|
        assert int(g.degrees.sum()) == 2 * g.num_edges
        # symmetry: u in N(v) <=> v in N(u)
        for v in range(g.num_vertices):
            for u in g.neighbors_of(v):
                assert v in g.neighbors_of(int(u))


class TestAdjacencyQueries:
    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 4)

    def test_has_edges_vectorized(self, tiny_graph):
        u = np.array([0, 0, 2, 4])
        v = np.array([1, 4, 3, 3])
        assert tiny_graph.has_edges(u, v).tolist() == [True, False, True, True]

    def test_has_edges_empty_graph(self):
        g = from_edge_list([], num_vertices=2)
        assert g.has_edges(np.array([0]), np.array([1])).tolist() == [False]

    def test_edge_endpoints(self, tiny_graph):
        src, dst = tiny_graph.edge_endpoints(np.arange(tiny_graph.num_edges))
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (0, 1), (0, 2), (1, 2), (2, 3), (3, 4),
        ]

    def test_label_queries(self, tiny_graph):
        assert tiny_graph.label_of(1) == 2
        assert tiny_graph.num_labels == 3

    def test_storage_bytes_positive(self, tiny_graph):
        assert tiny_graph.storage_bytes() > 0


class TestValidation:
    def test_bad_offsets_rejected(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(
                offsets=np.array([0, 2]),
                neighbors=np.array([1]),  # offsets say 2 slots
                edge_ids=np.array([0]),
                edge_src=np.array([0]),
                edge_dst=np.array([1]),
            )

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(InvalidGraphError):
            CSRGraph(
                offsets=np.array([0, 2, 1, 2]),
                neighbors=np.array([1, 2]),
                edge_ids=np.array([0, 1]),
                edge_src=np.array([0, 0]),
                edge_dst=np.array([1, 2]),
            )

    def test_label_length_mismatch_rejected(self, tiny_graph):
        with pytest.raises(InvalidGraphError):
            relabel_vertices(tiny_graph, np.array([1, 2]))

    def test_relabel(self, tiny_graph):
        g2 = relabel_vertices(tiny_graph, np.zeros(5, dtype=np.int64))
        assert g2.num_labels == 1
        assert g2.num_edges == tiny_graph.num_edges
