"""Tests for connected components and graph statistics."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.graph import (
    clique_graph,
    clustering_coefficient,
    component_sizes,
    connected_components,
    cycle_graph,
    from_edge_list,
    from_networkx,
    kronecker,
    largest_component_fraction,
    num_components,
    profile,
    star,
    triangle_count_exact,
    wedge_count,
)


class TestConnectedComponents:
    def test_single_component(self):
        g = cycle_graph(6)
        assert num_components(g) == 1
        assert (connected_components(g) == 0).all()

    def test_disjoint_components(self):
        g = from_edge_list([(0, 1), (2, 3), (4, 5)], num_vertices=7)
        labels = connected_components(g)
        assert num_components(g) == 4  # 3 edges + isolated vertex 6
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[6] == 6

    def test_component_sizes_sorted(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=5)
        assert component_sizes(g).tolist() == [3, 2]

    def test_giant_fraction(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        assert largest_component_fraction(g) == pytest.approx(0.5)

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=4)
        assert num_components(g) == 4

    @given(hst.integers(min_value=0, max_value=400),
           hst.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, m, seed):
        rng = np.random.default_rng(seed)
        n = 50
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        g = from_edge_list(list(zip(src.tolist(), dst.tolist())),
                           num_vertices=n)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        G.add_edges_from(g.edges())
        assert num_components(g) == nx.number_connected_components(G)


class TestMetrics:
    def test_triangle_count_oracles(self):
        G = nx.gnm_random_graph(80, 400, seed=3)
        g = from_networkx(G)
        assert triangle_count_exact(g) == sum(nx.triangles(G).values()) // 3

    def test_triangle_count_chunked_path(self):
        """The chunked per-edge loop must agree regardless of chunk size."""
        g = kronecker(9, 8, seed=2)
        full = triangle_count_exact(g)
        # clique-heavy fixture for a second data point
        assert triangle_count_exact(clique_graph(8)) == 56

    def test_wedges(self):
        assert wedge_count(star(5)) == 10
        assert wedge_count(cycle_graph(5)) == 5

    def test_clustering_extremes(self):
        assert clustering_coefficient(clique_graph(6)) == pytest.approx(1.0)
        assert clustering_coefficient(cycle_graph(8)) == 0.0
        assert clustering_coefficient(star(4)) == 0.0

    def test_profile_fields(self):
        g = kronecker(8, 6, seed=7, labels=4)
        p = profile(g)
        assert p.num_vertices == g.num_vertices
        assert p.num_edges == g.num_edges
        assert p.max_degree == g.max_degree
        assert 0 <= p.clustering <= 1
        assert 0 < p.giant_component_fraction <= 1
        assert p.degree_second_moment >= 2 * p.num_edges
        assert 0 < p.top_label_share <= 1

    def test_profile_as_dict_printable(self):
        p = profile(star(3))
        d = p.as_dict()
        assert d["vertices"] == 4
        assert isinstance(d["clustering"], str)
