"""Direct unit tests for :mod:`repro.graph.components`.

The component routines previously rode along inside the graph-metrics
suite; these tests pin their individual contracts — label identities,
size accounting, and full membership agreement with networkx (not just
the component count).
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.graph import (
    clique_graph,
    component_sizes,
    connected_components,
    cycle_graph,
    from_edge_list,
    largest_component_fraction,
    num_components,
    star,
)


def _random_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    return from_edge_list(list(zip(src.tolist(), dst.tolist())),
                          num_vertices=n)


class TestLabelContract:
    def test_label_is_smallest_member(self):
        """Docstring contract: component ids are the smallest vertex id."""
        g = from_edge_list([(5, 6), (6, 7), (1, 2)], num_vertices=8)
        labels = connected_components(g)
        assert labels[5] == labels[6] == labels[7] == 5
        assert labels[1] == labels[2] == 1
        assert labels[0] == 0 and labels[3] == 3 and labels[4] == 4

    def test_chain_collapses_to_root(self):
        """A long path needs several hook/jump rounds; all labels must
        still converge to vertex 0."""
        n = 257
        g = from_edge_list([(i, i + 1) for i in range(n - 1)],
                           num_vertices=n)
        assert (connected_components(g) == 0).all()

    def test_edgeless_graph_is_identity(self):
        g = from_edge_list([], num_vertices=5)
        assert connected_components(g).tolist() == [0, 1, 2, 3, 4]

    def test_labels_dtype_and_shape(self):
        g = star(4)
        labels = connected_components(g)
        assert labels.dtype == np.int64
        assert labels.shape == (g.num_vertices,)

    @given(hst.integers(min_value=0, max_value=300),
           hst.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_membership_matches_networkx(self, m, seed):
        """Full partition agreement, not just the component count."""
        n = 40
        g = _random_graph(n, m, seed)
        labels = connected_components(g)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        G.add_edges_from(g.edges())
        for component in nx.connected_components(G):
            members = sorted(component)
            assert {int(labels[v]) for v in members} == {members[0]}


class TestSizeAccounting:
    def test_sizes_partition_the_vertex_set(self):
        g = from_edge_list([(0, 1), (2, 3), (3, 4)], num_vertices=7)
        sizes = component_sizes(g)
        assert sizes.sum() == g.num_vertices
        assert len(sizes) == num_components(g)
        assert (np.diff(sizes) <= 0).all()  # largest first

    def test_fraction_bounds(self):
        assert largest_component_fraction(clique_graph(5)) == 1.0
        assert largest_component_fraction(cycle_graph(9)) == 1.0
        g = from_edge_list([], num_vertices=10)
        assert largest_component_fraction(g) == 0.1

    def test_fraction_of_vertexless_graph(self):
        g = from_edge_list([], num_vertices=0)
        assert largest_component_fraction(g) == 1.0

    @given(hst.integers(min_value=0, max_value=200),
           hst.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_size_invariants_hold_generally(self, m, seed):
        g = _random_graph(30, m, seed)
        sizes = component_sizes(g)
        assert sizes.sum() == 30
        assert largest_component_fraction(g) == sizes[0] / 30
