"""Tests for query patterns and canonical labeling."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.errors import InvalidPatternError
from repro.graph import (
    Pattern,
    QuickPatternEncoder,
    canonical_code,
    canonical_code_int,
    clique,
    cycle,
    diamond,
    first_appearance_relabel,
    house,
    path,
    sm_query,
    tailed_triangle,
    triangle,
)


class TestPattern:
    def test_triangle_shape(self):
        p = triangle()
        assert p.num_vertices == 3
        assert p.num_edges == 3
        assert not p.labeled

    def test_neighbors_and_degree(self):
        p = tailed_triangle()
        assert p.neighbors(2) == (0, 1, 3)
        assert p.degree(2) == 3

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern([(0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern([])

    def test_disconnected_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern([(0, 1), (2, 3)])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(InvalidPatternError):
            Pattern([(0, 1)], labels=[1])

    def test_duplicate_edges_collapse(self):
        p = Pattern([(0, 1), (1, 0)])
        assert p.num_edges == 1

    def test_matching_order_connected(self):
        for p in (triangle(), diamond(), house(), cycle(5), path(4)):
            order = p.matching_order()
            assert sorted(order) == list(range(p.num_vertices))
            placed = {order[0]}
            for v in order[1:]:
                assert set(p.neighbors(v)) & placed
                placed.add(v)

    def test_matching_order_starts_high_degree(self):
        p = tailed_triangle()
        assert p.matching_order()[0] == 2  # the degree-3 vertex

    def test_edge_order_connected(self):
        for p in (triangle(), diamond(), house(), cycle(6)):
            order = p.edge_order()
            assert sorted(order) == sorted(p.edges)
            covered = set(order[0])
            for e in order[1:]:
                assert covered & set(e)
                covered |= set(e)

    def test_automorphisms(self):
        assert triangle().automorphism_count() == 6
        assert cycle(4).automorphism_count() == 8
        assert clique(4).automorphism_count() == 24
        assert path(2).automorphism_count() == 2
        assert diamond().automorphism_count() == 4

    def test_labels_break_automorphisms(self):
        assert sm_query(1).automorphism_count() == 1  # labels 0,1,2 distinct
        # q3's two label-1 degree-3 vertices can swap.
        assert sm_query(3).automorphism_count() == 2

    def test_as_arrays(self):
        src, dst, labels = sm_query(1).as_arrays()
        assert len(src) == 3
        assert labels.tolist() == [0, 1, 2]

    def test_sm_query_invalid(self):
        with pytest.raises(InvalidPatternError):
            sm_query(7)

    def test_sm_queries_q4_q6_are_labeled_and_connected(self):
        for which in (4, 5, 6):
            q = sm_query(which)
            assert q.labeled
            # The selective label (7) sits on a low-degree vertex, so the
            # label-blind hand order must start elsewhere.
            rare = [v for v in range(q.num_vertices) if q.label(v) == 7]
            assert len(rare) == 1
            assert q.matching_order()[0] != rare[0]

    def test_standard_pattern_sizes(self):
        assert path(3).num_edges == 3
        assert cycle(5).num_edges == 5
        assert clique(5).num_edges == 10
        assert diamond().num_edges == 5
        assert house().num_edges == 6


class TestCanonicalCode:
    def test_isomorphic_relabelings_equal(self):
        base = [(0, 1), (1, 2), (0, 2), (2, 3)]
        labels = [1, 1, 2, 3]
        reference = canonical_code(base, labels)
        for perm in itertools.permutations(range(4)):
            edges = [(perm[u], perm[v]) for u, v in base]
            plabels = [0] * 4
            for v in range(4):
                plabels[perm[v]] = labels[v]
            assert canonical_code(edges, plabels) == reference

    def test_different_structures_differ(self):
        tri = canonical_code([(0, 1), (1, 2), (0, 2)], [0, 0, 0])
        wedge = canonical_code([(0, 1), (1, 2)], [0, 0, 0])
        assert tri != wedge

    def test_labels_distinguish(self):
        a = canonical_code([(0, 1)], [0, 0])
        b = canonical_code([(0, 1)], [0, 1])
        assert a != b

    def test_int_code_stable(self):
        edges, labels = [(0, 1), (1, 2)], [1, 0, 1]
        assert canonical_code_int(edges, labels) == canonical_code_int(edges, labels)

    def test_too_many_vertices_rejected(self):
        edges = [(i, i + 1) for i in range(9)]
        with pytest.raises(InvalidPatternError):
            canonical_code(edges, [0] * 10)


class TestFirstAppearanceRelabel:
    def test_simple(self):
        seq = np.array([[7, 3, 7, 9]])
        ids, fresh = first_appearance_relabel(seq)
        assert ids.tolist() == [[0, 1, 0, 2]]
        assert fresh.tolist() == [[True, True, False, True]]

    def test_all_same(self):
        ids, fresh = first_appearance_relabel(np.array([[5, 5, 5]]))
        assert ids.tolist() == [[0, 0, 0]]
        assert fresh.tolist() == [[True, False, False]]

    def test_rows_independent(self):
        seq = np.array([[1, 2], [2, 2]])
        ids, __ = first_appearance_relabel(seq)
        assert ids.tolist() == [[0, 1], [0, 0]]

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            first_appearance_relabel(np.array([1, 2, 3]))

    @given(
        hst.lists(
            hst.lists(hst.integers(min_value=0, max_value=9), min_size=6,
                      max_size=6),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, rows):
        seq = np.array(rows)
        ids, fresh = first_appearance_relabel(seq)
        for r, row in enumerate(rows):
            mapping = {}
            for j, v in enumerate(row):
                if v not in mapping:
                    mapping[v] = len(mapping)
                    assert fresh[r, j]
                else:
                    assert not fresh[r, j]
                assert ids[r, j] == mapping[v]


class TestQuickPatternEncoder:
    def test_isomorphic_embeddings_same_code(self):
        # Triangle (10, 11, 12) listed with edges in two different orders.
        labels = np.zeros(20, dtype=np.int64)
        enc = QuickPatternEncoder()
        codes = enc.encode_edge_embeddings(
            np.array([[10, 11, 10], [11, 12, 11]]),
            np.array([[11, 12, 12], [12, 10, 10]]),
            labels,
        )
        assert codes[0] == codes[1]

    def test_label_sensitivity(self):
        labels = np.array([0, 1, 0, 0], dtype=np.int64)
        enc = QuickPatternEncoder()
        codes = enc.encode_edge_embeddings(
            np.array([[0], [2]]), np.array([[1], [3]]), labels
        )
        assert codes[0] != codes[1]  # edge 0-1 has labels (0,1); 2-3 (0,0)

    def test_cache_grows_once_per_quick_pattern(self):
        labels = np.zeros(10, dtype=np.int64)
        enc = QuickPatternEncoder()
        enc.encode_edge_embeddings(np.array([[0]]), np.array([[1]]), labels)
        first = enc.cache_size
        enc.encode_edge_embeddings(np.array([[3]]), np.array([[4]]), labels)
        assert enc.cache_size == first  # same quick pattern, cached

    def test_empty_batch(self):
        enc = QuickPatternEncoder()
        out = enc.encode_edge_embeddings(
            np.empty((0, 2), dtype=np.int64),
            np.empty((0, 2), dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        )
        assert len(out) == 0

    def test_agreement_with_exact_canonicalization(self):
        """Every embedding's quick->canonical code equals canonicalizing its
        edge set directly."""
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 30)
        enc = QuickPatternEncoder()
        # wedges u-v-w as 2-edge embeddings
        srcs, dsts = [], []
        cases = []
        for u, v, w in [(0, 1, 2), (5, 6, 7), (10, 11, 10)][:2] + [(3, 4, 5)]:
            srcs.append([u, v])
            dsts.append([v, w])
            cases.append(((u, v, w)))
        codes = enc.encode_edge_embeddings(
            np.array(srcs), np.array(dsts), labels
        )
        for code, (u, v, w) in zip(codes, cases):
            edges = [(0, 1), (1, 2)]
            lab = [int(labels[u]), int(labels[v]), int(labels[w])]
            assert code == canonical_code_int(edges, lab)

    def test_shape_mismatch_rejected(self):
        enc = QuickPatternEncoder()
        with pytest.raises(ValueError):
            enc.encode_edge_embeddings(
                np.zeros((2, 1), dtype=np.int64),
                np.zeros((1, 1), dtype=np.int64),
                np.zeros(4, dtype=np.int64),
            )
