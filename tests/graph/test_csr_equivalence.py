"""Fast-vs-reference equivalence for `CSRGraph` adjacency probes.

`CSRGraph._adjacency_bitset` is the fast pipeline's probe structure: one
byte load per `has_edges` query instead of a binary search over the packed
edge keys.  The reference pipeline disables it, so the two pipelines must
answer every probe identically — including self-loops-absent, reversed
endpoints, and vertices with no edges at all.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.graph import from_edges

N_VERTICES = 24


@hst.composite
def graph_and_probes(draw):
    n_edges = draw(hst.integers(min_value=0, max_value=40))
    src = draw(
        hst.lists(
            hst.integers(min_value=0, max_value=N_VERTICES - 1),
            min_size=n_edges, max_size=n_edges,
        )
    )
    dst = draw(
        hst.lists(
            hst.integers(min_value=0, max_value=N_VERTICES - 1),
            min_size=n_edges, max_size=n_edges,
        )
    )
    n_probes = draw(hst.integers(min_value=0, max_value=64))
    pu = draw(
        hst.lists(
            hst.integers(min_value=0, max_value=N_VERTICES - 1),
            min_size=n_probes, max_size=n_probes,
        )
    )
    pv = draw(
        hst.lists(
            hst.integers(min_value=0, max_value=N_VERTICES - 1),
            min_size=n_probes, max_size=n_probes,
        )
    )
    return src, dst, pu, pv


def _answers(src, dst, pu, pv):
    # A fresh graph per pipeline: the bitset is cached per instance, and
    # the point is to compare the two build-and-probe paths end to end.
    edges = [(u, v) for u, v in zip(src, dst) if u != v]
    graph = from_edges(
        np.array([u for u, __ in edges], dtype=np.int64),
        np.array([v for __, v in edges], dtype=np.int64),
        num_vertices=N_VERTICES,
    )
    return graph.has_edges(
        np.array(pu, dtype=np.int64), np.array(pv, dtype=np.int64)
    )


class TestHasEdgesEquivalence:
    @given(graph_and_probes())
    @settings(max_examples=80, deadline=None)
    def test_bitset_matches_binary_search(self, case):
        src, dst, pu, pv = case
        with perf.pipeline(perf.FAST):
            fast = _answers(src, dst, pu, pv)
        with perf.pipeline(perf.REFERENCE):
            ref = _answers(src, dst, pu, pv)
        np.testing.assert_array_equal(fast, ref)

    def test_reference_pipeline_builds_no_bitset(self):
        graph = from_edges(
            np.array([0, 1], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
            num_vertices=4,
        )
        with perf.pipeline(perf.REFERENCE):
            assert graph._adjacency_bitset() is None
            assert bool(graph.has_edge(0, 1))
        with perf.pipeline(perf.FAST):
            assert graph._adjacency_bitset() is not None
