"""Tests for the isomorphism oracle, graph I/O and dataset stand-ins."""

import numpy as np
import networkx as nx
import pytest

from repro.graph import (
    DATASETS,
    clique,
    clique_graph,
    count_cliques,
    count_isomorphisms,
    count_subgraphs,
    cycle,
    find_isomorphisms,
    from_networkx,
    load_binary,
    load_edge_list,
    path,
    save_binary,
    save_edge_list,
    table2_rows,
    triangle,
)
from repro.graph import datasets as ds
from repro.errors import GammaError, InvalidGraphError


class TestOracle:
    def test_triangle_embeddings_count_automorphisms(self, tiny_graph):
        assert count_isomorphisms(tiny_graph, triangle()) == 6
        assert count_subgraphs(tiny_graph, triangle()) == 1

    def test_wheel_triangles(self, wheel_graph):
        assert count_subgraphs(wheel_graph, triangle()) == 5

    def test_embeddings_are_valid(self, wheel_graph):
        pat = triangle()
        for row in find_isomorphisms(wheel_graph, pat):
            for u, v in pat.edges:
                assert wheel_graph.has_edge(int(row[u]), int(row[v]))
            assert len(set(row.tolist())) == pat.num_vertices

    def test_labeled_matching(self, tiny_graph):
        from repro.graph import Pattern
        pat = Pattern([(0, 1)], labels=[0, 2], name="AB-edge")
        # edges with labels (0,2): (0,1) and (3,4) — each in one orientation.
        assert count_isomorphisms(tiny_graph, pat) == 2

    def test_against_networkx(self):
        G = nx.gnm_random_graph(30, 90, seed=11)
        g = from_networkx(G)
        nx_triangles = sum(nx.triangles(G).values()) // 3
        assert count_subgraphs(g, triangle()) == nx_triangles

    def test_path_counts(self):
        g = clique_graph(4)
        # paths of length 2 in K4: 4 * C(3,2) * 2 = 24 embeddings
        assert count_isomorphisms(g, path(2)) == 24

    def test_count_cliques_matches_pattern_count(self):
        G = nx.gnm_random_graph(25, 90, seed=5)
        g = from_networkx(G)
        assert count_cliques(g, 3) == count_subgraphs(g, triangle())
        assert count_cliques(g, 4) == count_subgraphs(g, clique(4))

    def test_cliques_k1_k2(self, tiny_graph):
        assert count_cliques(tiny_graph, 1) == tiny_graph.num_vertices
        assert count_cliques(tiny_graph, 2) == tiny_graph.num_edges

    def test_cycle_has_no_triangles(self):
        g = from_networkx(nx.cycle_graph(8))
        assert count_isomorphisms(g, triangle()) == 0

    def test_invalid_k_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            count_cliques(tiny_graph, 0)


class TestIO:
    def test_edge_list_roundtrip(self, tiny_graph, tmp_path):
        target = tmp_path / "g.txt"
        save_edge_list(tiny_graph, target)
        loaded = load_edge_list(target)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert list(loaded.edges()) == list(tiny_graph.edges())

    def test_edge_list_skips_comments(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("# a comment\n0 1\n\n1 2\n")
        g = load_edge_list(target)
        assert g.num_edges == 2

    def test_edge_list_rejects_garbage(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("0 x\n")
        with pytest.raises(InvalidGraphError):
            load_edge_list(target)

    def test_edge_list_rejects_short_lines(self, tmp_path):
        target = tmp_path / "g.txt"
        target.write_text("42\n")
        with pytest.raises(InvalidGraphError):
            load_edge_list(target)

    def test_binary_roundtrip(self, random_labeled_graph, tmp_path):
        target = tmp_path / "g.npz"
        save_binary(random_labeled_graph, target)
        loaded = load_binary(target)
        assert loaded.num_edges == random_labeled_graph.num_edges
        assert (loaded.labels == random_labeled_graph.labels).all()
        assert (loaded.offsets == random_labeled_graph.offsets).all()
        assert loaded.name == random_labeled_graph.name


class TestDatasets:
    def test_registry_matches_table2(self):
        assert set(DATASETS) == {
            "CP", "CL", "CO", "EA", "ER", "CL*8", "SL*5", "UK", "IT", "TW",
        }

    def test_paper_sizes_recorded(self):
        spec = DATASETS["TW"]
        assert spec.paper_edges == 2_400_000_000
        assert spec.kind == "social"

    def test_load_builds_and_caches(self):
        a = ds.load("ER")
        b = ds.load("ER")
        assert a is b
        ds.clear_cache()
        c = ds.load("ER")
        assert c is not a
        assert c.num_edges == a.num_edges  # deterministic rebuild
        ds.clear_cache()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(GammaError):
            ds.load("nope")

    def test_standins_are_labeled(self):
        g = ds.load("EA")
        assert g.num_labels > 1
        ds.clear_cache()

    def test_upscaled_standin_larger_than_base(self):
        base = ds.load("CL")
        big = ds.load("CL*8")
        assert big.num_vertices == 8 * base.num_vertices
        assert big.num_edges > 4 * base.num_edges
        ds.clear_cache()

    def test_table2_rows_shape(self):
        rows = table2_rows()
        assert len(rows) == 10
        for row in rows:
            assert row["standin_edges"] > 0
            assert row["paper_edges"] >= 1000 * row["standin_edges"] // 10
        ds.clear_cache()


class TestLabeledIO:
    def test_label_sidecar_roundtrip(self, tiny_graph, tmp_path):
        from repro.graph import (
            load_labeled_edge_list,
            save_edge_list,
            save_labels,
        )

        edges = tmp_path / "g.txt"
        labels = tmp_path / "g.labels"
        save_edge_list(tiny_graph, edges)
        save_labels(tiny_graph, labels)
        loaded = load_labeled_edge_list(edges, labels)
        assert (loaded.labels == tiny_graph.labels).all()
        assert loaded.num_edges == tiny_graph.num_edges

    def test_missing_sidecar_defaults_unlabeled(self, tiny_graph, tmp_path):
        from repro.graph import load_labeled_edge_list, save_edge_list

        edges = tmp_path / "g.txt"
        save_edge_list(tiny_graph, edges)
        loaded = load_labeled_edge_list(edges)
        assert loaded.num_labels == 1

    def test_partial_labels_default_zero(self, tmp_path):
        from repro.graph import load_labels

        sidecar = tmp_path / "x.labels"
        sidecar.write_text("# comment\n2 7\n")
        labels = load_labels(sidecar, 4)
        assert labels.tolist() == [0, 0, 7, 0]

    def test_bad_sidecar_rejected(self, tmp_path):
        from repro.graph import load_labels
        from repro.errors import InvalidGraphError

        sidecar = tmp_path / "x.labels"
        sidecar.write_text("9 1\n")
        with pytest.raises(InvalidGraphError):
            load_labels(sidecar, 4)  # vertex out of range
        sidecar.write_text("a b\n")
        with pytest.raises(InvalidGraphError):
            load_labels(sidecar, 4)
        sidecar.write_text("42\n")
        with pytest.raises(InvalidGraphError):
            load_labels(sidecar, 4)

    def test_real_dataset_end_to_end(self, tmp_path):
        """The real-data hook: a SNAP-style file runs through GAMMA."""
        from repro.core import Gamma
        from repro.algorithms import triangle_count
        from repro.graph import load_labeled_edge_list

        snap = tmp_path / "real.txt"
        snap.write_text("# synthetic 'real' file\n0 1\n1 2\n2 0\n2 3\n")
        graph = load_labeled_edge_list(snap)
        with Gamma(graph) as engine:
            assert triangle_count(engine).triangles == 1
