"""Tests for synthetic graph generators and upscaling."""

import numpy as np
import pytest

from repro.graph import (
    clique_graph,
    cycle_graph,
    erdos_renyi,
    kronecker,
    star,
    upscale,
    zipf_labels,
)


class TestKronecker:
    def test_shape(self):
        g = kronecker(8, 4, seed=1)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 4 * 256

    def test_deterministic(self):
        a = kronecker(7, 3, seed=5)
        b = kronecker(7, 3, seed=5)
        assert (a.edge_src == b.edge_src).all()
        assert (a.edge_dst == b.edge_dst).all()

    def test_seed_changes_graph(self):
        a = kronecker(7, 3, seed=1)
        b = kronecker(7, 3, seed=2)
        assert a.num_edges != b.num_edges or not (
            a.edge_src[: min(len(a.edge_src), len(b.edge_src))]
            == b.edge_src[: min(len(a.edge_src), len(b.edge_src))]
        ).all()

    def test_heavy_tail(self):
        """R-MAT graphs have hubs: max degree far above the mean."""
        g = kronecker(10, 8, seed=3)
        assert g.max_degree > 5 * g.degrees.mean()

    def test_labels_generated(self):
        g = kronecker(6, 4, seed=1, labels=5)
        assert g.num_labels <= 5
        assert g.num_labels > 1

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            kronecker(4, 2, a=0.9, b=0.9, c=0.9)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            kronecker(-1, 2)


class TestErdosRenyi:
    def test_edge_count_trimmed_exactly(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_edges == 300

    def test_deterministic(self):
        a = erdos_renyi(50, 100, seed=9)
        b = erdos_renyi(50, 100, seed=9)
        assert (a.edge_src == b.edge_src).all()


class TestFixtures:
    def test_clique(self):
        g = clique_graph(5)
        assert g.num_edges == 10
        assert (g.degrees == 4).all()

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert (g.degrees == 2).all()

    def test_star(self):
        g = star(7)
        assert g.num_edges == 7
        assert g.degree(0) == 7
        assert g.max_degree == 7


class TestZipfLabels:
    def test_skewed(self):
        labels = zipf_labels(10000, 8, seed=0)
        counts = np.bincount(labels, minlength=8)
        assert counts[0] > counts[7]
        assert counts.sum() == 10000

    def test_single_label(self):
        assert (zipf_labels(10, 1) == 0).all()

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            zipf_labels(10, 0)

    def test_deterministic(self):
        assert (zipf_labels(100, 4, seed=3) == zipf_labels(100, 4, seed=3)).all()


class TestUpscale:
    def test_scale_factor(self, tiny_graph):
        g = upscale(tiny_graph, 4, seed=0)
        assert g.num_vertices == 4 * tiny_graph.num_vertices
        assert g.num_edges == 4 * tiny_graph.num_edges

    def test_factor_one_is_identity(self, tiny_graph):
        assert upscale(tiny_graph, 1) is tiny_graph

    def test_labels_tiled(self, tiny_graph):
        g = upscale(tiny_graph, 2, seed=0)
        n = tiny_graph.num_vertices
        assert (g.labels[:n] == g.labels[n:]).all()

    def test_zero_crossover_gives_disjoint_copies(self, tiny_graph):
        g = upscale(tiny_graph, 3, crossover=0.0, seed=0)
        n = tiny_graph.num_vertices
        # every edge stays within its copy
        assert ((g.edge_src // n) == (g.edge_dst // n)).all()

    def test_crossover_creates_cross_edges(self, wheel_graph):
        g = upscale(wheel_graph, 4, crossover=0.9, seed=0)
        n = wheel_graph.num_vertices
        cross = ((g.edge_src // n) != (g.edge_dst // n)).sum()
        assert cross > 0

    def test_degree_distribution_preserved_without_crossover(self, wheel_graph):
        g = upscale(wheel_graph, 3, crossover=0.0, seed=0)
        base = np.sort(wheel_graph.degrees)
        scaled = np.sort(g.degrees)
        assert (scaled == np.tile(base, 3).reshape(3, -1).T.ravel()[
            np.argsort(np.tile(np.arange(len(base)), 3), kind="stable")
        ].reshape(-1)).sum() >= 0  # sanity; exact check below
        assert sorted(scaled.tolist()) == sorted(np.tile(base, 3).tolist())

    def test_invalid_factor_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            upscale(tiny_graph, 0)

    def test_invalid_crossover_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            upscale(tiny_graph, 2, crossover=1.5)
