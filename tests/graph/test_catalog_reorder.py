"""Tests for the pattern catalog and graph reordering."""

import numpy as np
import pytest

from repro.core import Gamma
from repro.algorithms import count_kcliques, match_pattern, motif_count
from repro.errors import InvalidGraphError
from repro.graph import (
    PatternCatalog,
    Pattern,
    bfs_order,
    canonical_code_int,
    connected_shapes,
    default_catalog,
    degree_order,
    diamond,
    kronecker,
    reorder,
    shape_name,
    sm_query,
    star,
    triangle,
)


class TestConnectedShapes:
    def test_counts_match_graph_atlas(self):
        """Known counts of connected graphs on <= 5 vertices: 1 with 1
        edge, 1 with 2, 3 with 3, 5 with 4, and 6 with 5 edges (the five
        5-vertex unicyclic graphs plus the diamond)."""
        by_edges = {}
        for edges in connected_shapes(max_vertices=5, max_edges=5):
            by_edges.setdefault(len(edges), 0)
            by_edges[len(edges)] += 1
        assert by_edges[1] == 1
        assert by_edges[2] == 1
        assert by_edges[3] == 3   # triangle, path-3, star-3
        assert by_edges[4] == 5   # square, tailed-tri, path-4, star-4, fork
        assert by_edges[5] == 6

    def test_all_shapes_distinct(self):
        shapes = connected_shapes(5, 4)
        codes = {canonical_code_int(s, [0] * (max(max(e) for e in s) + 1))
                 for s in shapes}
        assert len(codes) == len(shapes)

    def test_shape_names(self):
        assert shape_name([(0, 1), (1, 2), (0, 2)]) == "triangle"
        assert shape_name([(0, 1), (0, 2)]) == "wedge"
        assert shape_name([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]) == "diamond"
        assert shape_name([(0, 1), (1, 2), (2, 3), (3, 0)]) == "square"


class TestPatternCatalog:
    def test_register_and_lookup(self):
        catalog = PatternCatalog()
        code = catalog.register(triangle())
        assert catalog.name_of(code) == "triangle"
        assert code in catalog

    def test_unknown_code_fallback(self):
        catalog = PatternCatalog()
        assert catalog.name_of(12345).startswith("pattern:")

    def test_register_shapes_unlabeled(self):
        catalog = PatternCatalog()
        added = catalog.register_shapes(labels=(0,), max_vertices=4,
                                        max_edges=3)
        assert added == 5  # edge, wedge, triangle, path-3, star-3
        assert len(catalog) == 5

    def test_labeled_cross_product_dedups_isomorphic(self):
        catalog = PatternCatalog()
        catalog.register_shapes(labels=(0, 1), max_vertices=3, max_edges=1)
        # one edge with 2 labels: {00, 01, 11} -> 3 classes, not 4
        assert len(catalog) == 3

    def test_describe_sorted_by_support(self):
        catalog = default_catalog(1)
        with Gamma(star(5)) as engine:
            m = motif_count(engine, 2)
        rows = catalog.describe(m.histogram)
        assert rows[0][0] == "wedge"
        assert rows[0][1] == 10  # C(5,2)

    def test_motif_census_named(self):
        catalog = default_catalog(1)
        g = kronecker(7, 4, seed=2)
        with Gamma(g) as engine:
            m = motif_count(engine, 3)
        names = {name for name, __ in catalog.describe(m.histogram)}
        assert names <= {"triangle", "path-3", "star-3"}


class TestReorder:
    @pytest.fixture
    def graph(self):
        return kronecker(8, 5, seed=9, labels=3)

    def test_degree_order_places_hubs_first(self, graph):
        reordered = reorder(graph, "degree")
        degs = reordered.degrees
        # New vertex 0 is the old max-degree hub.
        assert degs[0] == graph.max_degree

    def test_permutations_are_bijections(self, graph):
        for fn in (degree_order, bfs_order):
            perm = fn(graph)
            assert sorted(perm.tolist()) == list(range(graph.num_vertices))

    def test_structure_preserved(self, graph):
        for order in ("degree", "bfs"):
            reordered = reorder(graph, order)
            assert reordered.num_edges == graph.num_edges
            assert sorted(reordered.degrees.tolist()) == sorted(
                graph.degrees.tolist()
            )

    def test_pattern_counts_invariant(self, graph):
        with Gamma(graph) as engine:
            base = count_kcliques(engine, 3).cliques
        for order in ("degree", "bfs"):
            with Gamma(reorder(graph, order)) as engine:
                assert count_kcliques(engine, 3).cliques == base

    def test_labels_follow_vertices(self, graph):
        reordered = reorder(graph, "degree")
        perm = degree_order(graph)
        assert (reordered.labels[perm] == graph.labels).all()

    def test_unknown_order_rejected(self, graph):
        with pytest.raises(InvalidGraphError):
            reorder(graph, "alphabetical")

    def test_bfs_root_override(self, graph):
        perm = bfs_order(graph, root=5)
        assert perm[5] == 0


class TestSymmetryBreaking:
    def test_constraints_eliminate_automorphisms(self):
        # enforcing the constraints leaves exactly one representative per
        # automorphism orbit: |embeddings| == |unique subgraphs|
        from repro.graph import clique_graph, count_subgraphs

        g = kronecker(7, 5, seed=4)
        for pat in (triangle(), diamond(), sm_query(3)):
            with Gamma(g) as engine:
                result = match_pattern(engine, pat, symmetry_breaking=True)
            assert result.embeddings == count_subgraphs(g, pat)
            assert result.unique_subgraphs == result.embeddings

    def test_identity_only_group_has_no_constraints(self):
        assert sm_query(1).symmetry_breaking_constraints() == []

    def test_triangle_constraints_total_order(self):
        assert triangle().symmetry_breaking_constraints() == [
            (0, 1), (0, 2), (1, 2)
        ]

    def test_shrinks_intermediate_tables(self):
        g = kronecker(8, 6, seed=3)
        peaks = {}
        for sb in (False, True):
            with Gamma(g) as engine:
                match_pattern(engine, triangle(), symmetry_breaking=sb)
                peaks[sb] = engine.peak_host_bytes
        assert peaks[True] < peaks[False]


class TestPatternOf:
    def test_roundtrip_registered_pattern(self):
        catalog = PatternCatalog()
        code = catalog.register(sm_query(1))
        rebuilt = catalog.pattern_of(code)
        assert rebuilt.labels == sm_query(1).labels
        assert set(rebuilt.edges) == set(sm_query(1).edges)

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            PatternCatalog().pattern_of(42)

    def test_mine_then_rematch(self):
        """FPM discovers a pattern; the catalog rebuilds it; symmetry-broken
        SM re-counts exactly the FPM support."""
        from repro.algorithms import frequent_pattern_mining, match_pattern
        from repro.graph import default_catalog

        g = kronecker(8, 6, seed=9, labels=3)
        catalog = default_catalog(3)
        with Gamma(g) as engine:
            fpm = frequent_pattern_mining(engine, 2, 5)
        for code, support in sorted(fpm.patterns.items())[:4]:
            pattern = catalog.pattern_of(code)
            with Gamma(g) as engine:
                result = match_pattern(engine, pattern, symmetry_breaking=True)
            assert result.unique_subgraphs == support
