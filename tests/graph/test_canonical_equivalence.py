"""Fast-vs-reference equivalence of quick-pattern canonicalization.

``QuickPatternEncoder._canonicalize`` groups (qa, qb) quick-key pairs:
the reference arm uses ``np.unique(axis=0)``, the fast arm a two-key
lexsort with lead flags.  Both enumerate uniques in the same
lexicographic order, so codes, placements, and inverse maps — and
therefore every aggregation histogram — must be bit-identical.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.graph.canonical import QuickPatternEncoder
from repro.graph.generators import erdos_renyi, zipf_labels


def _encode_in(mode, srcs, dsts, labels, return_positions=False):
    with perf.pipeline(mode):
        encoder = QuickPatternEncoder()
        out = encoder.encode_edge_embeddings(
            srcs, dsts, labels, return_positions=return_positions)
    if return_positions:
        return out[0].tolist(), out[1].tolist()
    return out.tolist()


@settings(max_examples=50, deadline=None)
@given(
    seed=hst.integers(min_value=0, max_value=2**31 - 1),
    n=hst.integers(min_value=0, max_value=200),
    width=hst.integers(min_value=1, max_value=4),
    num_labels=hst.sampled_from([1, 3, 8]),
)
def test_canonicalize_fast_matches_reference(seed, n, width, num_labels):
    rng = np.random.default_rng(seed)
    num_vertices = 30
    srcs = rng.integers(0, num_vertices, size=(n, width), dtype=np.int64)
    dsts = rng.integers(0, num_vertices, size=(n, width), dtype=np.int64)
    labels = rng.integers(0, num_labels, size=num_vertices, dtype=np.int64)
    fast = _encode_in(perf.FAST, srcs, dsts, labels)
    ref = _encode_in(perf.REFERENCE, srcs, dsts, labels)
    assert fast == ref


def test_canonicalize_positions_fast_matches_reference():
    graph = erdos_renyi(40, 160, seed=11)
    labels = zipf_labels(40, 4, seed=3)
    rng = np.random.default_rng(5)
    rows = rng.integers(0, graph.num_edges, size=(300, 2), dtype=np.int64)
    srcs = graph.edge_src[rows]
    dsts = graph.edge_dst[rows]
    fast = _encode_in(perf.FAST, srcs, dsts, labels, return_positions=True)
    ref = _encode_in(perf.REFERENCE, srcs, dsts, labels,
                     return_positions=True)
    assert fast == ref


def test_canonicalize_isomorphic_rows_share_codes_in_both_modes():
    # Two triangles listed in different edge orders are the same pattern.
    srcs = np.array([[0, 1, 2], [4, 3, 5]], dtype=np.int64)
    dsts = np.array([[1, 2, 0], [5, 4, 3]], dtype=np.int64)
    labels = np.zeros(6, dtype=np.int64)
    for mode in (perf.FAST, perf.REFERENCE):
        codes = _encode_in(mode, srcs, dsts, labels)
        assert codes[0] == codes[1]
