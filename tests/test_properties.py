"""Cross-cutting property-based tests.

These exercise whole-system invariants on randomly generated graphs:
GAMMA's counts match the exact oracle, every engine agrees with every
other, configuration knobs never change results, and the classic
algorithmic invariants (Apriori antimonotonicity, automorphism
divisibility) hold.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
)
from repro.baselines import PangolinGPU, Peregrine
from repro.core import Gamma, GammaConfig
from repro.graph import (
    Pattern,
    count_cliques,
    count_isomorphisms,
    from_edges,
    triangle,
    zipf_labels,
)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@hst.composite
def random_graphs(draw, max_vertices=24, max_edges=70, max_labels=3):
    n = draw(hst.integers(min_value=4, max_value=max_vertices))
    m = draw(hst.integers(min_value=3, max_value=max_edges))
    seed = draw(hst.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    labels = zipf_labels(n, max_labels, seed=seed)
    return from_edges(src, dst, num_vertices=n, labels=labels)


@hst.composite
def small_patterns(draw):
    choice = draw(hst.integers(min_value=0, max_value=3))
    labeled = draw(hst.booleans())
    shapes = {
        0: [(0, 1), (1, 2)],
        1: [(0, 1), (1, 2), (0, 2)],
        2: [(0, 1), (1, 2), (2, 3)],
        3: [(0, 1), (1, 2), (2, 3), (3, 0)],
    }
    edges = shapes[choice]
    k = max(max(e) for e in edges) + 1
    labels = None
    if labeled:
        labels = [
            draw(hst.integers(min_value=0, max_value=2)) for __ in range(k)
        ]
    return Pattern(edges, labels=labels, name=f"prop-{choice}")


class TestOracleAgreement:
    @given(random_graphs(), small_patterns())
    @SLOW
    def test_sm_matches_oracle(self, graph, pattern):
        with Gamma(graph) as engine:
            got = match_pattern(engine, pattern).embeddings
        assert got == count_isomorphisms(graph, pattern)

    @given(random_graphs(), hst.integers(min_value=2, max_value=4))
    @SLOW
    def test_kcl_matches_oracle(self, graph, k):
        with Gamma(graph) as engine:
            got = count_kcliques(engine, k).cliques
        assert got == count_cliques(graph, k)


class TestEngineEquivalence:
    @given(random_graphs())
    @SLOW
    def test_gpu_baseline_agrees(self, graph):
        with Gamma(graph) as a, PangolinGPU(graph) as b:
            assert (
                count_kcliques(a, 3).cliques == count_kcliques(b, 3).cliques
            )

    @given(random_graphs(), hst.integers(min_value=1, max_value=4))
    @SLOW
    def test_cpu_baseline_agrees_on_fpm(self, graph, min_support):
        with Gamma(graph) as a, Peregrine(graph) as b:
            pa = frequent_pattern_mining(a, 2, min_support).patterns
            pb = frequent_pattern_mining(b, 2, min_support).patterns
        assert pa == pb


class TestConfigInvariance:
    @given(random_graphs())
    @SLOW
    def test_knobs_do_not_change_counts(self, graph):
        reference = None
        for config in (
            GammaConfig(),
            GammaConfig(pre_merge=False, write_strategy="two_pass"),
            GammaConfig(access_mode="zerocopy", compaction=False),
            GammaConfig(num_warps=2, sort_method="xtr2sort"),
        ):
            with Gamma(graph, config) as engine:
                count = count_kcliques(engine, 3).cliques
            if reference is None:
                reference = count
            assert count == reference


class TestAlgorithmicInvariants:
    @given(random_graphs())
    @SLOW
    def test_automorphism_divisibility(self, graph):
        pattern = triangle()
        with Gamma(graph) as engine:
            result = match_pattern(engine, pattern)
        assert result.embeddings % pattern.automorphism_count() == 0

    @given(random_graphs(), hst.integers(min_value=1, max_value=5))
    @SLOW
    def test_fpm_support_antimonotone(self, graph, min_support):
        """Raising the threshold can only lose patterns; supports reported
        always meet the threshold."""
        with Gamma(graph) as a:
            low = frequent_pattern_mining(a, 2, min_support).patterns
        with Gamma(graph) as b:
            high = frequent_pattern_mining(b, 2, min_support + 2).patterns
        assert set(high) <= set(low)
        assert all(v >= min_support for v in low.values())

    @given(random_graphs())
    @SLOW
    def test_clique_hierarchy(self, graph):
        """(k+1)-cliques cannot outnumber k-cliques * n."""
        with Gamma(graph) as engine:
            k3 = count_kcliques(engine, 3).cliques
            k4 = count_kcliques(engine, 4).cliques
        assert k4 <= k3 * graph.num_vertices

    @given(random_graphs())
    @SLOW
    def test_simulated_time_deterministic(self, graph):
        times = []
        for __ in range(2):
            with Gamma(graph) as engine:
                count_kcliques(engine, 3)
                times.append(engine.simulated_seconds)
        assert times[0] == times[1]
