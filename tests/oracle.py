"""Brute-force reference counters for differential testing.

Every function here recounts a mining result by direct enumeration over the
graph's adjacency structure — plain Python sets and recursion, sharing no
code with the extension/aggregation/filtering pipeline under test.  The
only shared component is the canonical *encoder* (histogram keys are
QuickPattern hashes, so comparing histograms requires hashing pattern
classes the same way); the counting logic is independent.

Intended for small graphs (tens of vertices): everything is exponential
and obviously correct rather than fast.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Set

import numpy as np

from repro.graph.canonical import QuickPatternEncoder


def adjacency_sets(graph) -> List[Set[int]]:
    """Neighbor sets per vertex, via the CSR arrays directly."""
    adj: List[Set[int]] = [set() for __ in range(graph.num_vertices)]
    for v in range(graph.num_vertices):
        lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
        adj[v].update(int(u) for u in graph.neighbors[lo:hi])
    return adj


def triangle_count_ref(graph) -> int:
    """Unordered triangles, counted once each."""
    return kclique_count_ref(graph, 3)


def kclique_count_ref(graph, k: int) -> int:
    """Unordered k-cliques via ascending-order backtracking."""
    adj = adjacency_sets(graph)

    def grow(clique: List[int], candidates: Set[int]) -> int:
        if len(clique) == k:
            return 1
        total = 0
        for v in sorted(candidates):
            if v > clique[-1]:
                total += grow(clique + [v], candidates & adj[v])
        return total

    return sum(grow([v], adj[v]) for v in range(graph.num_vertices))


def _encode_edge_sets(graph, edge_sets) -> Dict[int, int]:
    """Histogram {canonical code: count} over iterable of edge-id sets."""
    edge_sets = [sorted(s) for s in edge_sets]
    if not edge_sets:
        return {}
    width = len(edge_sets[0])
    ids = np.array(edge_sets, dtype=np.int64).reshape(len(edge_sets), width)
    srcs = graph.edge_src[ids]
    dsts = graph.edge_dst[ids]
    labels = (graph.labels if graph.labels is not None
              else np.zeros(graph.num_vertices, dtype=np.int64))
    codes = QuickPatternEncoder().encode_edge_embeddings(srcs, dsts, labels)
    hist: Dict[int, int] = {}
    for code in codes:
        hist[int(code)] = hist.get(int(code), 0) + 1
    return hist


def motif_histogram_ref(graph, num_edges: int) -> Dict[int, int]:
    """Connected edge-induced subgraphs with exactly ``num_edges`` edges,
    counted once per distinct edge set, keyed by canonical code."""
    incident: List[Set[int]] = [set() for __ in range(graph.num_vertices)]
    for e in range(graph.num_edges):
        incident[int(graph.edge_src[e])].add(e)
        incident[int(graph.edge_dst[e])].add(e)

    frontier: Set[frozenset] = {
        frozenset((e,)) for e in range(graph.num_edges)
    }
    for __ in range(num_edges - 1):
        grown: Set[frozenset] = set()
        for subset in frontier:
            adjacent: Set[int] = set()
            for e in subset:
                adjacent |= incident[int(graph.edge_src[e])]
                adjacent |= incident[int(graph.edge_dst[e])]
            for f in adjacent - subset:
                grown.add(subset | {f})
        frontier = grown
    return _encode_edge_sets(graph, frontier)


def graphlet_histogram_ref(graph, k: int) -> Dict[int, int]:
    """Connected induced ``k``-vertex subgraphs, keyed by canonical code."""
    adj = adjacency_sets(graph)
    edge_id = {}
    for e in range(graph.num_edges):
        u, v = int(graph.edge_src[e]), int(graph.edge_dst[e])
        edge_id[(min(u, v), max(u, v))] = e

    frontier: Set[frozenset] = {
        frozenset((v,)) for v in range(graph.num_vertices)
    }
    for __ in range(k - 1):
        grown: Set[frozenset] = set()
        for subset in frontier:
            reach: Set[int] = set()
            for v in subset:
                reach |= adj[v]
            for u in reach - subset:
                grown.add(subset | {u})
        frontier = grown

    edge_sets = []
    for subset in frontier:
        induced = [
            edge_id[(u, v)]
            for u, v in itertools.combinations(sorted(subset), 2)
            if v in adj[u]
        ]
        edge_sets.append(induced)
    # Group by induced edge count first: encode_edge_sets needs rectangular
    # input, and induced subgraphs differ in edge count.
    hist: Dict[int, int] = {}
    by_width: Dict[int, list] = {}
    for s in edge_sets:
        by_width.setdefault(len(s), []).append(s)
    for group in by_width.values():
        for code, count in _encode_edge_sets(graph, group).items():
            hist[code] = hist.get(code, 0) + count
    return hist


def sm_embedding_count_ref(graph, pattern) -> int:
    """Injective embeddings of ``pattern`` (every vertex ordering counted,
    matching ``SMResult.embeddings``), by backtracking search."""
    adj = adjacency_sets(graph)
    k = pattern.num_vertices
    labeled = pattern.labeled

    def ok(mapping: List[int], q: int, v: int) -> bool:
        if v in mapping:
            return False
        if labeled and int(graph.labels[v]) != pattern.label(q):
            return False
        for prev in range(q):
            if pattern.has_edge(prev, q) and mapping[prev] not in adj[v]:
                return False
        return True

    def extend(mapping: List[int]) -> int:
        q = len(mapping)
        if q == k:
            return 1
        # Anchor to a matched neighbor when one exists to prune the scan.
        anchors = [p for p in range(q) if pattern.has_edge(p, q)]
        candidates = (adj[mapping[anchors[0]]] if anchors
                      else range(graph.num_vertices))
        return sum(
            extend(mapping + [v]) for v in candidates if ok(mapping, q, v)
        )

    return extend([])
