"""Shared fixtures: small deterministic graphs with known properties."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.gpusim import make_platform


@pytest.fixture
def platform():
    """A fresh default platform."""
    return make_platform()


@pytest.fixture
def tiny_graph():
    """5 vertices: a triangle (0,1,2) with a tail 2-3-4.

    Labels: [0, 2, 1, 0, 2].  Known facts: 1 triangle, degrees [2,2,3,2,1].
    """
    return from_edge_list(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
        labels=np.array([0, 2, 1, 0, 2]),
    )


@pytest.fixture
def wheel_graph():
    """Hub 0 connected to a 5-cycle 1-2-3-4-5 (the wheel W5).

    Known facts: 10 edges, 5 triangles, hub degree 5.
    """
    edges = [(0, i) for i in range(1, 6)]
    edges += [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]
    return from_edge_list(edges)


@pytest.fixture
def random_labeled_graph():
    """A reproducible 50-vertex random graph with 4 labels."""
    rng = np.random.default_rng(42)
    m = 160
    src = rng.integers(0, 50, m)
    dst = rng.integers(0, 50, m)
    labels = rng.integers(0, 4, 50)
    return from_edge_list(
        list(zip(src.tolist(), dst.tolist())), num_vertices=50, labels=labels
    )
