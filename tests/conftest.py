"""Shared fixtures: small deterministic graphs with known properties.

Also hardens the suite against hidden ordering/RNG coupling:

* an autouse fixture reseeds NumPy's *legacy* global RNG before every
  test, so a test that forgets to construct a seeded ``default_rng``
  cannot leak entropy into (or absorb entropy from) its neighbours;
* setting ``REPRO_TEST_SHUFFLE=<seed>`` deterministically shuffles the
  collection order — CI runs a shuffled leg to flush out tests that only
  pass because of the order they happen to run in.
"""

import os
import random

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.gpusim import make_platform


@pytest.fixture(autouse=True)
def _reseed_global_rng():
    """Pin the legacy global RNGs per test (isolation, not randomness)."""
    np.random.seed(0xC0FFEE % (2**32))
    random.seed(0xC0FFEE)
    yield


def pytest_collection_modifyitems(config, items):
    seed = os.environ.get("REPRO_TEST_SHUFFLE", "")
    if not seed:
        return
    rng = random.Random(seed)
    rng.shuffle(items)
    config.pluginmanager.get_plugin("terminalreporter").write_line(
        f"REPRO_TEST_SHUFFLE={seed}: running {len(items)} tests in "
        f"shuffled order"
    )


@pytest.fixture
def platform():
    """A fresh default platform."""
    return make_platform()


@pytest.fixture
def tiny_graph():
    """5 vertices: a triangle (0,1,2) with a tail 2-3-4.

    Labels: [0, 2, 1, 0, 2].  Known facts: 1 triangle, degrees [2,2,3,2,1].
    """
    return from_edge_list(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
        labels=np.array([0, 2, 1, 0, 2]),
    )


@pytest.fixture
def wheel_graph():
    """Hub 0 connected to a 5-cycle 1-2-3-4-5 (the wheel W5).

    Known facts: 10 edges, 5 triangles, hub degree 5.
    """
    edges = [(0, i) for i in range(1, 6)]
    edges += [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]
    return from_edge_list(edges)


@pytest.fixture
def random_labeled_graph():
    """A reproducible 50-vertex random graph with 4 labels."""
    rng = np.random.default_rng(42)
    m = 160
    src = rng.integers(0, 50, m)
    dst = rng.integers(0, 50, m)
    labels = rng.integers(0, 4, 50)
    return from_edge_list(
        list(zip(src.tolist(), dst.tolist())), num_vertices=50, labels=labels
    )
