"""Differential corpus: sharded GAMMA vs the brute-force oracle.

Every mining result produced by a sharded run — any shard count, any
policy, either pipeline arm — must equal the count a pure-Python DFS
enumeration produces on the same graph.  The oracle
(:mod:`tests.oracle`) shares no pipeline code with the engine, so an
agreement here rules out whole classes of partitioning bugs: lost or
double-owned frontier units, broken cross-shard deduplication, pattern
supports miscounted in the aggregation merge.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.algorithms import (
    count_kcliques,
    match_pattern,
    motif_count,
    triangle_count,
)
from repro.algorithms.subgraph_matching import match_pattern_binary
from repro.graph import Pattern, from_edges, zipf_labels
from repro.shard import ShardedGamma

from tests.oracle import (
    kclique_count_ref,
    motif_histogram_ref,
    sm_embedding_count_ref,
    triangle_count_ref,
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SHARD_COUNTS = (1, 2, 4)


@hst.composite
def random_graphs(draw, max_vertices=20, max_edges=60, max_labels=3):
    n = draw(hst.integers(min_value=4, max_value=max_vertices))
    m = draw(hst.integers(min_value=3, max_value=max_edges))
    seed = draw(hst.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    labels = zipf_labels(n, max_labels, seed=seed)
    return from_edges(src, dst, num_vertices=n, labels=labels)


def sharding_params(draw):
    num_shards = draw(hst.sampled_from(SHARD_COUNTS))
    policy = draw(hst.sampled_from(("static", "degree", "stealing")))
    arm = draw(hst.sampled_from(perf.PIPELINES))
    return num_shards, policy, arm


@given(graph=random_graphs(), data=hst.data())
@SLOW
def test_triangles_match_oracle(graph, data):
    num_shards, policy, arm = sharding_params(data.draw)
    with perf.pipeline(arm):
        engine = ShardedGamma(graph, num_shards=num_shards, policy=policy)
        got = triangle_count(engine).triangles
    assert got == triangle_count_ref(graph)


@given(graph=random_graphs(), k=hst.integers(min_value=3, max_value=5),
       data=hst.data())
@SLOW
def test_kcliques_match_oracle(graph, k, data):
    num_shards, policy, arm = sharding_params(data.draw)
    with perf.pipeline(arm):
        engine = ShardedGamma(graph, num_shards=num_shards, policy=policy)
        got = count_kcliques(engine, k).cliques
    assert got == kclique_count_ref(graph, k)


@given(graph=random_graphs(max_vertices=14, max_edges=36),
       num_edges=hst.integers(min_value=2, max_value=3), data=hst.data())
@SLOW
def test_motifs_match_oracle(graph, num_edges, data):
    num_shards, policy, arm = sharding_params(data.draw)
    with perf.pipeline(arm):
        engine = ShardedGamma(graph, num_shards=num_shards, policy=policy)
        got = motif_count(engine, num_edges)
    ref = motif_histogram_ref(graph, num_edges)
    assert got.histogram == ref
    assert got.total_instances == sum(ref.values())


_SM_SHAPES = (
    [(0, 1), (1, 2)],
    [(0, 1), (1, 2), (0, 2)],
    [(0, 1), (1, 2), (2, 3), (3, 0)],
)


@given(graph=random_graphs(max_vertices=16, max_edges=40),
       shape=hst.sampled_from(_SM_SHAPES), labeled=hst.booleans(),
       binary=hst.booleans(), data=hst.data())
@SLOW
def test_subgraph_matching_matches_oracle(graph, shape, labeled, binary,
                                          data):
    k = max(max(e) for e in shape) + 1
    labels = [data.draw(hst.integers(min_value=0, max_value=2))
              for __ in range(k)] if labeled else None
    pattern = Pattern(shape, labels=labels, name="diff-sm")
    num_shards, policy, arm = sharding_params(data.draw)
    matcher = match_pattern_binary if binary else match_pattern
    with perf.pipeline(arm):
        engine = ShardedGamma(graph, num_shards=num_shards, policy=policy)
        got = matcher(engine, pattern).embeddings
    assert got == sm_embedding_count_ref(graph, pattern)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("arm", perf.PIPELINES)
def test_wheel_triangles_every_arm(wheel_graph, num_shards, arm):
    """Deterministic anchor alongside the property tests: W5 has exactly
    5 triangles under every shard count and both pipeline arms."""
    with perf.pipeline(arm):
        engine = ShardedGamma(wheel_graph, num_shards=num_shards,
                              policy="degree")
        assert triangle_count(engine).triangles == 5
