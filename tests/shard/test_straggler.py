"""Barrier/exchange logging and the per-barrier straggler report.

The BSP engine logs one entry per barrier (which shard gated it, how long
each peer waited) and one per all-gather (payload bytes per shard);
``straggler_report`` turns those into the per-shard table embedded in the
sharded manifest.  Everything is derived from simulated quantities, so it
must not perturb the canonical-manifest determinism guarantee, and N=1
runs — which have no barriers — must embed nothing.
"""

import pytest

from repro.algorithms import count_kcliques, motif_count
from repro.graph import generators
from repro.obs.profile import render_straggler_report, straggler_report
from repro.shard import (
    ShardedGamma,
    build_sharded_manifest,
    canonical_manifest_bytes,
)


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


@pytest.fixture(scope="module")
def engine(graph):
    # Motifs aggregate, so the run has both barriers and all-gathers
    # (k-clique never exchanges — extension is ownership-partitioned).
    engine = ShardedGamma(graph, num_shards=4, policy="stealing")
    motif_count(engine, 3)
    return engine


class TestEngineLogs:
    def test_barrier_log_populated_at_n4(self, engine):
        assert engine.barrier_log
        entry = engine.barrier_log[0]
        assert set(entry) >= {"superstep", "op", "gating_shard", "waits"}
        assert len(entry["waits"]) == 4
        assert 0 <= entry["gating_shard"] < 4
        # The gating shard is the one that nobody waits *for*.
        assert entry["waits"][entry["gating_shard"]] == pytest.approx(0.0)

    def test_supersteps_are_sequential(self, engine):
        assert [e["superstep"] for e in engine.barrier_log] == (
            list(range(len(engine.barrier_log))))

    def test_exchange_log_carries_per_shard_payloads(self, engine):
        assert engine.exchange_log
        for entry in engine.exchange_log:
            assert len(entry["payload_bytes"]) == 4
            assert all(b >= 0 for b in entry["payload_bytes"])

    def test_single_shard_logs_nothing(self, graph):
        engine = ShardedGamma(graph, num_shards=1)
        count_kcliques(engine, 4)
        assert engine.barrier_log == []
        assert engine.exchange_log == []


class TestStragglerReport:
    def test_report_shape(self, engine):
        report = straggler_report(engine)
        assert report["schema"] == "gamma-straggler/1"
        assert report["num_shards"] == 4
        assert report["supersteps"] == len(engine.barrier_log)
        assert len(report["per_shard"]) == 4
        gated = sum(r["gated_supersteps"] for r in report["per_shard"])
        assert gated == report["supersteps"]

    def test_exchange_shares_sum_to_one(self, engine):
        report = straggler_report(engine)
        assert report["exchange_bytes_total"] > 0
        shares = [r["exchange_share"] for r in report["per_shard"]]
        assert sum(shares) == pytest.approx(1.0)

    def test_utilization_skew_matches_per_shard(self, engine):
        report = straggler_report(engine)
        utils = report["utilization"]
        assert report["utilization_skew"] == pytest.approx(
            max(utils) - min(utils))
        for row, util in zip(report["per_shard"], utils):
            assert row["utilization"] == pytest.approx(util)

    def test_render(self, engine):
        text = render_straggler_report(straggler_report(engine))
        assert "straggler report: 4 shards" in text
        assert "utilization skew" in text

    def test_render_empty(self, graph):
        engine = ShardedGamma(graph, num_shards=1)
        count_kcliques(engine, 4)
        text = render_straggler_report(straggler_report(engine))
        assert "no barriers recorded" in text


class TestManifestEmbedding:
    def test_multi_shard_manifest_embeds_straggler(self, engine):
        manifest = build_sharded_manifest(engine, system="GAMMA")
        assert manifest["straggler"]["schema"] == "gamma-straggler/1"
        assert manifest["straggler"]["num_shards"] == 4

    def test_single_shard_manifest_has_no_straggler(self, graph):
        engine = ShardedGamma(graph, num_shards=1)
        count_kcliques(engine, 4)
        manifest = build_sharded_manifest(engine, system="GAMMA")
        assert "straggler" not in manifest

    def test_straggler_is_deterministic_across_runs(self, graph):
        def one_run():
            engine = ShardedGamma(graph, num_shards=4, policy="stealing")
            count_kcliques(engine, 4)
            return canonical_manifest_bytes(
                build_sharded_manifest(engine, system="GAMMA"))

        assert one_run() == one_run()
