"""Unit tests for the inter-GPU exchange cost model."""

import pytest

from repro.gpusim import clock as clk
from repro.gpusim import make_platform
from repro.gpusim.interconnect import (
    BYTES_P2P,
    P2P_MESSAGES,
    Interconnect,
    barrier,
)
from repro.gpusim.spec import InterconnectSpec


def test_spec_validates():
    with pytest.raises(ValueError):
        InterconnectSpec(kind="infiniband")
    with pytest.raises(ValueError):
        InterconnectSpec(bandwidth=0)
    with pytest.raises(ValueError):
        InterconnectSpec(latency=-1e-6)


def test_nvlink_charges_interconnect_bucket():
    platform = make_platform()
    link = Interconnect(
        platform, InterconnectSpec(kind="nvlink", bandwidth=10e9,
                                   latency=1e-6)
    )
    link.send(10_000_000, messages=2)
    assert platform.clock.time_in(clk.INTERCONNECT) == pytest.approx(
        10_000_000 / 10e9 + 2 * 1e-6
    )
    assert platform.counters.get(BYTES_P2P) == 10_000_000
    assert platform.counters.get(P2P_MESSAGES) == 2
    # NVLink is a peer path: no host-link traffic.
    assert platform.clock.time_in(clk.PCIE_EXPLICIT) == 0.0


def test_pcie_stages_through_host():
    platform = make_platform()
    link = Interconnect(platform, InterconnectSpec(kind="pcie"))
    before_d2h = platform.counters.get("bytes_d2h")
    link.send(1_000_000)
    assert platform.counters.get("bytes_d2h") - before_d2h == 1_000_000
    before_h2d = platform.counters.get("bytes_h2d")
    link.recv(2_000_000)
    assert platform.counters.get("bytes_h2d") - before_h2d == 2_000_000
    # Staging latency still lands on the interconnect bucket.
    assert platform.clock.time_in(clk.INTERCONNECT) > 0


def test_pcie_slower_than_nvlink_at_equal_latency():
    def run(kind):
        platform = make_platform()
        spec = InterconnectSpec(kind=kind, bandwidth=25e9, latency=5e-6)
        Interconnect(platform, spec).allgather(1 << 20, 3 << 20, peers=3)
        return platform.clock.total

    assert run("pcie") > run("nvlink")


def test_allgather_is_free_without_peers():
    platform = make_platform()
    Interconnect(platform).allgather(1 << 20, 0, peers=0)
    assert platform.clock.total == 0.0
    assert platform.counters.get(BYTES_P2P) == 0


def test_zero_transfer_charges_nothing():
    platform = make_platform()
    Interconnect(platform).send(0, messages=0)
    assert platform.clock.total == 0.0


def test_negative_transfer_rejected():
    platform = make_platform()
    with pytest.raises(ValueError):
        Interconnect(platform).send(-1)


def test_barrier_advances_laggards_to_makespan():
    fast, slow = make_platform(), make_platform()
    slow.clock.advance(clk.COMPUTE, 2.0)
    fast.clock.advance(clk.COMPUTE, 0.5)
    waits = barrier([fast, slow])
    assert waits == [pytest.approx(1.5), 0.0]
    assert fast.clock.total == pytest.approx(slow.clock.total)
    assert fast.clock.time_in(clk.SHARD_SYNC) == pytest.approx(1.5)
    assert slow.clock.time_in(clk.SHARD_SYNC) == 0.0


def test_barrier_is_free_for_one_platform():
    platform = make_platform()
    platform.clock.advance(clk.COMPUTE, 1.0)
    assert barrier([platform]) == [0.0]
    assert platform.clock.time_in(clk.SHARD_SYNC) == 0.0
