"""Checkpoint/resume and MNI guard-rails for sharded runs."""

import pytest

from repro.algorithms import count_kcliques, frequent_pattern_mining
from repro.errors import ExecutionError, GammaError
from repro.graph import generators
from repro.resilience import FaultPlan, FaultSpec
from repro.shard import ShardedGamma


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


def _task(engine):
    return count_kcliques(engine, 4)


def test_crash_then_resume_matches_clean_run(graph, tmp_path):
    ckpt = tmp_path / "ck"

    crashed = ShardedGamma(graph, num_shards=2)
    crashed.install_fault_plan(FaultPlan(
        name="kill",
        specs=(FaultSpec(kind="device_oom", at="*/level:2"),),
    ), shard=1)
    with pytest.raises(GammaError):
        crashed.run(_task, checkpoint_dir=str(ckpt))
    crashed.close()
    # One checkpoint per shard.
    assert (ckpt / "shard-0" / "checkpoint.bin").exists()
    assert (ckpt / "shard-1" / "checkpoint.bin").exists()

    resumed = ShardedGamma(graph, num_shards=2)
    result = resumed.run(_task, checkpoint_dir=str(ckpt), resume=True)

    clean = ShardedGamma(graph, num_shards=2)
    reference = _task(clean)
    assert result.cliques == reference.cliques
    resumed_states = resumed.shard_states()
    clean_states = clean.shard_states()
    for i in range(2):
        assert resumed_states[i]["counters"] == clean_states[i]["counters"]
        assert (resumed_states[i]["clock_buckets"]
                == clean_states[i]["clock_buckets"])


def test_degradation_policy_targets_faulting_shard(graph):
    engine = ShardedGamma(graph, num_shards=2)
    engine.install_fault_plan(FaultPlan(
        name="pressure",
        specs=(FaultSpec(kind="device_oom", at="*/level:2", count=1),),
    ), shard=1)
    result = engine.run(_task, policy="halve-chunk")
    reference = _task(ShardedGamma(graph, num_shards=2))
    assert result.cliques == reference.cliques
    events = [e for e in engine.resilience_log if e["type"] == "degradation"]
    assert events and all(e["shard"] == 1 for e in events)


def test_mni_rejected_across_shards(graph):
    engine = ShardedGamma(graph, num_shards=2)
    with pytest.raises(ExecutionError, match="(?i)mni"):
        frequent_pattern_mining(engine, 2, 3, support_metric="mni")


def test_mni_still_works_on_one_shard(graph):
    sharded = frequent_pattern_mining(
        ShardedGamma(graph, num_shards=1), 2, 3, support_metric="mni"
    )
    from repro.core import Gamma

    plain = frequent_pattern_mining(Gamma(graph), 2, 3, support_metric="mni")
    assert sharded.patterns == plain.patterns
