"""Direct unit coverage for the shm transport and RemotePart proxies.

The crash-matrix and parity suites exercise these end-to-end through
worker processes, where the in-process coverage tracer cannot follow.
These tests drive the same coordinator-side code paths directly: the
shared-memory publish/attach/release cycle inside one process, and the
``RemotePart`` read-proxy surface against a live process executor.
"""

import numpy as np
import pytest

from repro.core import GammaConfig
from repro.errors import ExecutionError
from repro.graph import generators
from repro.gpusim.spec import InterconnectSpec
from repro.shard import ProcessExecutor, shm
from repro.shard.table import RemotePart, ShardedTable


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(24, 70, seed=11, labels=3)


class TestShmTransport:
    def test_small_graphs_ship_pickled(self, graph):
        meta = shm.publish_graph(graph)
        assert meta["mode"] == "pickle"
        assert meta["nbytes"] == shm.graph_nbytes(graph)
        attached = shm.attach_graph(meta)
        assert attached.graph is graph
        attached.close()  # no-op for pickle mode
        shm.release_graph(meta)  # no-op for pickle mode
        assert not shm.live_segments()

    def test_publish_attach_roundtrip_over_segment(self, graph):
        # Force the segment path regardless of graph size.
        meta = shm.publish_graph(graph, threshold=0)
        assert meta["mode"] == "shm"
        assert meta["segment"] in shm.live_segments()
        attached = shm.attach_graph(meta)
        try:
            got = attached.graph
            assert got.name == graph.name
            for field in ("offsets", "neighbors", "edge_src", "edge_dst"):
                np.testing.assert_array_equal(
                    getattr(got, field), getattr(graph, field))
            # Views are read-only: workers cannot mutate the shared CSR.
            with pytest.raises(ValueError):
                got.offsets[0] = 99
        finally:
            attached.close()
            shm.release_graph(meta)
        assert meta["segment"] not in shm.live_segments()


class TestRemotePart:
    @pytest.fixture()
    def executor(self, graph):
        executor = ProcessExecutor()
        executor.start(graph=graph, config=GammaConfig(), num_shards=2,
                       policy="static", interconnect=InterconnectSpec())
        yield executor
        executor.shutdown()

    def _seeded_parts(self, executor):
        handles = executor.fanout(
            "new_table", [{"kind": "vertex", "name": "t"}] * 2)
        executor.fanout("seed_vertices",
                        [{"table": handle} for handle in handles])
        return handles, executor.table_parts(handles)

    def test_reads_match_worker_state(self, graph, executor):
        __, parts = self._seeded_parts(executor)
        assert all(isinstance(part, RemotePart) for part in parts)
        # Both workers seeded the full vertex set (no ownership filter).
        assert sum(p.num_embeddings for p in parts) == 2 * graph.num_vertices
        for part in parts:
            assert part.depth == 1
            assert part.num_levels == 1
            assert part.total_cells == part.num_embeddings
            assert part.nbytes > 0
            assert len(part.columns[0]) == part.num_embeddings
            assert len(part.columns) == 1
            assert part.column_length(0) == part.num_embeddings
            np.testing.assert_array_equal(
                part.column_values(0),
                np.arange(graph.num_vertices, dtype=np.int64))
            np.testing.assert_array_equal(
                part.column_parents(0),
                np.full(part.num_embeddings, -1, dtype=np.int64))
            assert part.materialize().shape == (part.num_embeddings, 1)

    def test_sharded_table_over_remote_parts(self, graph, executor):
        handles, parts = self._seeded_parts(executor)
        table = ShardedTable("vertex", "t", parts, handles=handles)
        assert table.num_shards == 2
        assert table.depth == 1
        assert table.num_embeddings == 2 * graph.num_vertices
        np.testing.assert_array_equal(
            table.shard_row_counts(),
            np.array([graph.num_vertices] * 2, dtype=np.int64))

    def test_seed_and_release(self, executor):
        handles = executor.fanout(
            "new_table", [{"kind": "vertex", "name": "s"}] * 2)
        parts = executor.table_parts(handles)
        parts[0].seed(np.array([3, 1, 2], dtype=np.int64))
        assert parts[0].num_embeddings == 3
        np.testing.assert_array_equal(
            parts[0].column_values(0), np.array([3, 1, 2]))
        for part in parts:
            part.release()
        assert parts[1].num_embeddings == 0

    def test_double_release_of_segment_raises(self, graph):
        meta = shm.publish_graph(graph, threshold=0)
        shm.release_graph(meta)
        with pytest.raises(ExecutionError, match="already"):
            shm.release_graph(meta)
