"""Determinism guarantees of sharded execution.

Two promises (docs/SHARDING.md):

1. the same sharded workload run twice produces byte-identical canonical
   manifests and identical mining output — the simulator never reads the
   wall clock and the partitioning policies are RNG-free;
2. a single-shard ``ShardedGamma`` is *bit-identical* to the unsharded
   ``Gamma`` engine: no ownership filters, no barriers, no exchanges, so
   the op stream, every counter and every clock bucket match exactly.
"""

import pytest

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    motif_count,
)
from repro.core import Gamma
from repro.graph import generators
from repro.shard import (
    ShardedGamma,
    build_sharded_manifest,
    canonical_manifest_bytes,
)


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


def test_repeated_runs_are_byte_identical(graph):
    def one_run():
        engine = ShardedGamma(graph, num_shards=4, policy="stealing")
        result = motif_count(engine, 3)
        manifest = build_sharded_manifest(
            engine, system="GAMMA", dataset="er36", task="motifs"
        )
        return result, canonical_manifest_bytes(manifest)

    first, first_bytes = one_run()
    second, second_bytes = one_run()
    assert first.histogram == second.histogram
    assert first_bytes == second_bytes


def test_canonical_bytes_strip_only_volatile_fields(graph):
    engine = ShardedGamma(graph, num_shards=2)
    count_kcliques(engine, 3)
    manifest = build_sharded_manifest(engine, system="GAMMA")
    blob = canonical_manifest_bytes(manifest)
    assert b"created_utc" not in blob
    assert b"wall_seconds" not in blob
    # The deterministic payload survives.
    assert b"counters" in blob
    assert b"utilization" in blob


@pytest.mark.parametrize("task", ["kcl", "motifs", "fpm"])
def test_single_shard_is_bit_identical_to_gamma(graph, task):
    def drive(engine):
        if task == "kcl":
            return count_kcliques(engine, 4).cliques
        if task == "motifs":
            return motif_count(engine, 3).histogram
        return frequent_pattern_mining(engine, 2, 4).patterns

    plain = Gamma(graph)
    ref = drive(plain)
    sharded = ShardedGamma(graph, num_shards=1)
    got = drive(sharded)

    assert got == ref  # counts and canonical codes
    shard0 = sharded.shard_states()[0]
    assert (shard0["counters"]
            == plain.platform.counters.snapshot(include_zero=True))
    assert shard0["clock_buckets"] == plain.platform.clock.snapshot()
    assert sharded.simulated_seconds == plain.simulated_seconds
    assert sharded.peak_memory_bytes == plain.peak_memory_bytes
    # No sharding machinery leaked into the run.
    assert shard0["counters"].get("bytes_p2p", 0) == 0
    assert shard0["clock_buckets"].get("shard_sync", 0.0) == 0.0
    assert sharded.shard_utilization() == [1.0]


def test_shard_counts_change_clock_but_not_results(graph):
    histograms = {}
    for n in (1, 2, 4):
        engine = ShardedGamma(graph, num_shards=n, policy="degree")
        histograms[n] = motif_count(engine, 3).histogram
    assert histograms[1] == histograms[2] == histograms[4]


def test_sharding_speeds_up_compute_bound_mining():
    """On a graph dense enough that extension work dominates the fixed
    per-engine costs (graph staging, per-level launches), four shards must
    beat one on the simulated clock.  benchmarks/bench_shard.py asserts
    the full >= 1.5x bar on a larger instance."""
    dense = generators.erdos_renyi(300, 6000, seed=5)
    seconds = {}
    for n in (1, 4):
        engine = ShardedGamma(dense, num_shards=n, policy="degree")
        count_kcliques(engine, 4)
        seconds[n] = engine.simulated_seconds
    assert seconds[4] < seconds[1]


def test_merged_manifest_structure(graph):
    engine = ShardedGamma(graph, num_shards=2, policy="static")
    count_kcliques(engine, 3)
    manifest = build_sharded_manifest(
        engine, system="GAMMA", dataset="er36", task="kcl"
    )
    assert manifest["num_shards"] == 2
    assert manifest["shard_policy"] == "static"
    assert len(manifest["shards"]) == 2
    assert [doc["shard"] for doc in manifest["shards"]] == [0, 1]
    assert len(manifest["utilization"]) == 2
    assert all(0.0 <= u <= 1.0 for u in manifest["utilization"])
    # Merged counters sum the shards.
    key = "kernel_launches"
    per_shard = [doc["counters"].get(key, 0) for doc in manifest["shards"]]
    if any(per_shard):
        assert manifest["counters"][key] == sum(per_shard)
