"""Differential corpus: process-pool executor vs the serial executor.

The process backend runs the exact same per-shard handler code as the
serial backend, but in forked worker processes with results funnelled
back over pipes.  The determinism contract (docs/SHARDING.md) says the
two must be indistinguishable from the outside: identical mining
results, identical per-shard counters and clock buckets, and
byte-identical canonical manifests.  This file pins that contract both
on a fixed full matrix ({1,2,4} shards x {static,degree,stealing}
policies x both pipeline arms) and on a Hypothesis corpus of random
graphs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hst

from repro import perf
from repro.algorithms import count_kcliques, motif_count, triangle_count
from repro.graph import from_edges, generators, zipf_labels
from repro.shard import (
    ShardedGamma,
    build_sharded_manifest,
    canonical_manifest_bytes,
)
from repro.shard import shm

SLOW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SHARD_COUNTS = (1, 2, 4)
POLICIES = ("static", "degree", "stealing")


@hst.composite
def random_graphs(draw, max_vertices=16, max_edges=40, max_labels=3):
    n = draw(hst.integers(min_value=4, max_value=max_vertices))
    m = draw(hst.integers(min_value=3, max_value=max_edges))
    seed = draw(hst.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    labels = zipf_labels(n, max_labels, seed=seed)
    return from_edges(src, dst, num_vertices=n, labels=labels)


def _observe(executor, graph, num_shards, policy, arm, drive):
    """Run one sharded workload and capture everything the determinism
    contract covers: the mining result, the full per-shard state dicts,
    and the canonical manifest bytes."""
    with perf.pipeline(arm):
        engine = ShardedGamma(
            graph, num_shards=num_shards, policy=policy, executor=executor
        )
        try:
            result = drive(engine)
            states = engine.shard_states()
            manifest = build_sharded_manifest(
                engine, system="GAMMA", dataset="parity", task="parity"
            )
            blob = canonical_manifest_bytes(manifest)
        finally:
            engine.close()
    return result, states, blob


def _assert_parity(graph, num_shards, policy, arm, drive):
    serial = _observe("serial", graph, num_shards, policy, arm, drive)
    process = _observe("process", graph, num_shards, policy, arm, drive)
    assert serial[0] == process[0]  # mining result
    assert serial[1] == process[1]  # per-shard counters/clock buckets
    assert serial[2] == process[2]  # canonical manifest bytes
    # No shared-memory segments may outlive the engines.
    assert not shm.live_segments()


@pytest.fixture(scope="module")
def matrix_graph():
    return generators.erdos_renyi(24, 70, seed=11, labels=3)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_matrix_triangles_parity(matrix_graph, num_shards, policy):
    """Fixed-graph anchor over the full shard-count x policy matrix."""
    _assert_parity(
        matrix_graph, num_shards, policy, perf.PIPELINES[0],
        lambda engine: triangle_count(engine).triangles,
    )


@pytest.mark.parametrize("arm", perf.PIPELINES)
def test_matrix_kcliques_parity_both_arms(matrix_graph, arm):
    """Both pipeline arms agree across backends on the same workload."""
    _assert_parity(
        matrix_graph, 4, "stealing", arm,
        lambda engine: count_kcliques(engine, 4).cliques,
    )


@given(graph=random_graphs(), data=hst.data())
@SLOW
def test_kcliques_parity_property(graph, data):
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    policy = data.draw(hst.sampled_from(POLICIES))
    arm = data.draw(hst.sampled_from(perf.PIPELINES))
    _assert_parity(
        graph, num_shards, policy, arm,
        lambda engine: count_kcliques(engine, 3).cliques,
    )


@given(graph=random_graphs(max_vertices=12, max_edges=30), data=hst.data())
@SLOW
def test_motifs_parity_property(graph, data):
    num_shards = data.draw(hst.sampled_from(SHARD_COUNTS))
    policy = data.draw(hst.sampled_from(POLICIES))
    arm = data.draw(hst.sampled_from(perf.PIPELINES))
    _assert_parity(
        graph, num_shards, policy, arm,
        lambda engine: motif_count(engine, 3).histogram,
    )
