"""Warm process-pool reuse: reset-in-place must be invisible.

The serve scheduler keeps ``ProcessExecutor(reusable=True)`` pools alive
between queries; ``start()`` on a live pool fans out per-worker resets
instead of forking.  The regression contract here: a run on a reused
pool produces byte-identical canonical manifests (and identical results)
to a run on a freshly forked pool — and actually reuses the worker
processes it claims to.
"""

import numpy as np
import pytest

from repro.algorithms import count_kcliques, motif_count
from repro.graph import generators
from repro.serve import QuerySpec, Scheduler, ServeConfig
from repro.shard import (
    ProcessExecutor,
    ShardedGamma,
    build_sharded_manifest,
    canonical_manifest_bytes,
)
from repro.shard.executor import ShardExecutor


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


def _observe(executor, graph, drive, num_shards=2):
    engine = ShardedGamma(graph, num_shards=num_shards, policy="static",
                          executor=executor)
    try:
        result = drive(engine)
        manifest = build_sharded_manifest(
            engine, system="GAMMA", dataset="reuse", task="reuse")
        return result, canonical_manifest_bytes(manifest)
    finally:
        engine.close()


DRIVES = [
    lambda engine: count_kcliques(engine, 4).cliques,
    lambda engine: motif_count(engine, 2).histogram,
]


def test_reused_pool_matches_fresh_pool_byte_for_byte(graph):
    fresh = [_observe("process", graph, drive) for drive in DRIVES]

    pool = ProcessExecutor(reusable=True)
    try:
        first = _observe(pool, graph, DRIVES[0])
        pids = list(pool.pids)
        assert pids and pool.pool_reuses == 0
        second = _observe(pool, graph, DRIVES[1])
        # Same worker processes, no refork; the reset really was a reset.
        assert list(pool.pids) == pids
        assert pool.pool_reuses == 1
    finally:
        pool.terminate()
    assert not pool.pids

    assert first[0] == fresh[0][0] and second[0] == fresh[1][0]
    # Byte-identical canonical manifests: reused pools leak no state.
    assert first[1] == fresh[0][1]
    assert second[1] == fresh[1][1]


def test_repeated_reuse_is_stable(graph):
    pool = ProcessExecutor(reusable=True)
    try:
        blobs = {_observe(pool, graph, DRIVES[0])[1] for _ in range(3)}
        assert len(blobs) == 1
        assert pool.pool_reuses == 2
    finally:
        pool.terminate()


def test_shape_mismatch_falls_back_to_cold_start(graph):
    pool = ProcessExecutor(reusable=True)
    try:
        _observe(pool, graph, DRIVES[0], num_shards=2)
        pids = list(pool.pids)
        # A different shard count cannot be reset in place: the pool
        # refoks and the run still succeeds.
        result, _ = _observe(pool, graph, DRIVES[0], num_shards=3)
        assert result == _observe("serial", graph, DRIVES[0],
                                  num_shards=3)[0]
        assert list(pool.pids) != pids
        assert pool.pool_reuses == 0
    finally:
        pool.terminate()


def test_graph_mismatch_falls_back_to_cold_start(graph):
    other = generators.erdos_renyi(30, 90, seed=7, labels=3)
    pool = ProcessExecutor(reusable=True)
    try:
        _observe(pool, graph, DRIVES[0])
        pids = list(pool.pids)
        result, blob = _observe(pool, other, DRIVES[0])
        assert list(pool.pids) != pids
        assert (result, blob) == _observe("process", other, DRIVES[0])
    finally:
        pool.terminate()


def test_non_reusable_pool_still_tears_down(graph):
    pool = ProcessExecutor(reusable=False)
    _observe(pool, graph, DRIVES[0])
    assert not pool.pids  # engine.close() really shut it down


def test_base_executor_reset_declines():
    assert ShardExecutor().reset(
        graph=None, config=None, num_shards=2, policy="static",
        interconnect=None) is False


def test_scheduler_reuses_pools_across_queries(graph):
    scheduler = Scheduler(ServeConfig(slots=1), graphs={"G": graph})
    try:
        states = [
            scheduler.submit(QuerySpec(family="kcl", k=4, dataset="G",
                                       gpus=2, executor="process"))
            for _ in range(2)
        ]
        scheduler.run_until_idle()
        assert all(s.status == "completed" for s in states)
        assert states[0].result == states[1].result
        assert scheduler.stats()["pool_reuses"] == 1
        assert scheduler.stats()["pools"] == 1
    finally:
        scheduler.close()


def test_scheduler_no_reuse_flag(graph):
    scheduler = Scheduler(ServeConfig(slots=1, reuse_pools=False),
                          graphs={"G": graph})
    try:
        states = [
            scheduler.submit(QuerySpec(family="kcl", k=4, dataset="G",
                                       gpus=2, executor="process"))
            for _ in range(2)
        ]
        scheduler.run_until_idle()
        assert all(s.status == "completed" for s in states)
        assert scheduler.stats()["pools"] == 0
    finally:
        scheduler.close()


def test_reset_serial_numpy_state_isolated(graph):
    # A reset between runs must not let one query's RNG state bleed into
    # the next: two identical runs bracketing an unrelated one agree.
    pool = ProcessExecutor(reusable=True)
    try:
        a = _observe(pool, graph, DRIVES[0])
        np.random.shuffle(np.arange(16))  # parent-side noise
        _observe(pool, graph, DRIVES[1])
        b = _observe(pool, graph, DRIVES[0])
        assert a == b
    finally:
        pool.terminate()
