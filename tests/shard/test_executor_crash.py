"""Crash matrix for the process-pool shard executor.

A worker process can die two ways: an injected ``worker_crash`` fault
(the worker calls ``os._exit`` mid-command, no reply, no cleanup) or a
real signal (``SIGKILL`` from outside).  Either way the coordinator must
(a) surface :class:`~repro.errors.WorkerCrashed` naming the shard, (b)
refuse further commands on the broken executor, (c) leave the last
per-shard checkpoints on disk so a fresh engine resumes to bit-identical
final accounting, and (d) leak nothing — no shared-memory segments, no
spill temp dirs.  This file pins all four, plus the degradation-ladder
parity between backends and the fork-state pickling contract.
"""

import glob
import os
import pickle
import signal
import tempfile
import threading
import time
from multiprocessing import Pipe

import pytest

from repro.algorithms import count_kcliques, triangle_count
from repro.core import GammaConfig
from repro.errors import ExecutionError, WorkerCrashed
from repro.graph import generators
from repro.gpusim.spec import InterconnectSpec
from repro.resilience import FaultPlan, FaultSpec
from repro.shard import ProcessExecutor, SerialExecutor, ShardedGamma, shm
from repro.shard.worker import CRASH_EXIT_CODE, serve

CRASH_PLAN = FaultPlan(
    name="die",
    specs=(FaultSpec(kind="worker_crash", at="*/level:2"),),
)


@pytest.fixture(scope="module")
def graph():
    return generators.erdos_renyi(36, 120, seed=23, labels=3)


def _task(engine):
    return count_kcliques(engine, 4)


def _spill_dirs():
    return set(glob.glob(os.path.join(tempfile.gettempdir(),
                                      "gamma-spill-*")))


def test_injected_crash_serial(graph):
    engine = ShardedGamma(graph, num_shards=2, executor="serial")
    engine.install_fault_plan(CRASH_PLAN, shard=1)
    with pytest.raises(WorkerCrashed):
        _task(engine)
    engine.close()


def test_injected_crash_process_names_shard_and_exit_code(graph):
    spills_before = _spill_dirs()
    engine = ShardedGamma(graph, num_shards=2, executor="process")
    engine.install_fault_plan(CRASH_PLAN, shard=1)
    with pytest.raises(WorkerCrashed) as info:
        _task(engine)
    assert info.value.shard == 1
    assert info.value.exit_code == CRASH_EXIT_CODE
    # The broken executor refuses everything after the crash.
    with pytest.raises(ExecutionError, match="no longer usable"):
        engine.shard_states()
    engine.close()
    assert not shm.live_segments()
    assert _spill_dirs() == spills_before


def test_sigkill_mid_run(graph):
    """A real SIGKILL (not the injector) surfaces the same way."""
    engine = ShardedGamma(graph, num_shards=2, executor="process")
    pids = engine.executor.pids
    assert len(pids) == 2 and all(pid > 0 for pid in pids)
    os.kill(pids[1], signal.SIGKILL)
    # Give the kernel a beat to tear the pipe down.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            os.kill(pids[1], 0)
        except ProcessLookupError:
            break
        time.sleep(0.01)
    with pytest.raises(WorkerCrashed) as info:
        _task(engine)
    assert info.value.shard == 1
    assert info.value.exit_code == -signal.SIGKILL
    engine.close()
    assert not shm.live_segments()


@pytest.mark.parametrize("resume_backend", ["serial", "process"])
def test_crash_then_resume_bit_identical(graph, tmp_path, resume_backend):
    """Checkpoint/resume after a worker crash matches a clean run exactly,
    whichever backend performs the resume."""
    ckpt = tmp_path / "ck"
    crashed = ShardedGamma(graph, num_shards=2, executor="process")
    crashed.install_fault_plan(CRASH_PLAN, shard=1)
    with pytest.raises(WorkerCrashed):
        crashed.run(_task, checkpoint_dir=str(ckpt))
    crashed.close()
    assert (ckpt / "shard-0" / "checkpoint.bin").exists()
    assert (ckpt / "shard-1" / "checkpoint.bin").exists()

    resumed = ShardedGamma(graph, num_shards=2, executor=resume_backend)
    result = resumed.run(_task, checkpoint_dir=str(ckpt), resume=True)

    clean = ShardedGamma(graph, num_shards=2, executor="serial")
    reference = _task(clean)
    assert result.cliques == reference.cliques
    resumed_states = resumed.shard_states()
    clean_states = clean.shard_states()
    for i in range(2):
        assert resumed_states[i]["counters"] == clean_states[i]["counters"]
        assert (resumed_states[i]["clock_buckets"]
                == clean_states[i]["clock_buckets"])
    resumed.close()
    clean.close()
    assert not shm.live_segments()


def test_degradation_ladder_parity(graph):
    """The named-policy retry ladder produces identical resilience logs
    and final accounting under both backends."""
    plan = FaultPlan(
        name="pressure",
        specs=(FaultSpec(kind="device_oom", at="*/level:2", count=1),),
    )
    observed = {}
    for backend in ("serial", "process"):
        engine = ShardedGamma(graph, num_shards=2, executor=backend)
        engine.install_fault_plan(plan, shard=1)
        result = engine.run(_task, policy="halve-chunk")
        observed[backend] = (
            result.cliques, engine.resilience_log, engine.shard_states()
        )
        engine.close()
    assert observed["serial"] == observed["process"]
    events = [e for e in observed["process"][1]
              if e["type"] == "degradation"]
    assert events and all(e["shard"] == 1 for e in events)


def test_shared_memory_lifecycle_for_large_graphs():
    """Graphs over the shm threshold ship through one segment that the
    engine owns and drains on close."""
    big = generators.erdos_renyi(2500, 26000, seed=7, labels=3)
    assert shm.graph_nbytes(big) >= shm.SHM_THRESHOLD_BYTES
    engine = ShardedGamma(big, num_shards=2, executor="process")
    assert engine.executor._graph_meta["mode"] == "shm"
    assert len(shm.live_segments()) == 1
    got = triangle_count(engine).triangles
    engine.close()
    assert not shm.live_segments()

    serial = ShardedGamma(big, num_shards=2, executor="serial")
    assert triangle_count(serial).triangles == got
    serial.close()


def test_release_graph_rejects_double_release():
    big = generators.erdos_renyi(2500, 26000, seed=7, labels=3)
    meta = shm.publish_graph(big)
    assert meta["mode"] == "shm"
    shm.release_graph(meta)
    with pytest.raises(ExecutionError, match="already"):
        shm.release_graph(meta)
    assert not shm.live_segments()


def test_executors_pickle_as_inert_config(graph):
    """Fork-state contract: pickling an executor never ships live state."""
    engine = ShardedGamma(graph, num_shards=2, executor="process")
    triangle_count(engine)
    copy = pickle.loads(pickle.dumps(engine.executor))
    assert isinstance(copy, ProcessExecutor)
    assert copy.start_method == engine.executor.start_method
    assert copy._procs == [] and copy._conns == []
    assert not copy._broken and not copy._closed
    engine.close()

    serial = ShardedGamma(graph, num_shards=2, executor="serial")
    triangle_count(serial)
    copy = pickle.loads(pickle.dumps(serial.executor))
    assert isinstance(copy, SerialExecutor)
    assert copy.workers == []
    serial.close()


def test_spawn_start_method_smoke(monkeypatch):
    """The spawn start method works end-to-end (slow: fresh interpreters),
    proving the worker bootstrap is genuinely picklable."""
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "spawn")
    small = generators.erdos_renyi(16, 40, seed=3, labels=2)
    engine = ShardedGamma(small, num_shards=2, executor="process")
    assert engine.executor.start_method == "spawn"
    got = triangle_count(engine).triangles
    engine.close()
    ref = triangle_count(ShardedGamma(small, num_shards=2)).triangles
    assert got == ref
    assert not shm.live_segments()


def _bootstrap(graph, index=0, num_shards=1):
    return {
        "index": index,
        "graph": shm.publish_graph(graph),
        "config": GammaConfig(),
        "num_shards": num_shards,
        "policy": "static",
        "interconnect": InterconnectSpec(),
        "telemetry": False,
    }


def _serve_on_thread(graph, requests, bootstrap=None):
    """Drive the worker serve loop in-process over a pipe pair."""
    parent, child = Pipe(duplex=True)
    status = []
    thread = threading.Thread(
        target=lambda: status.append(
            serve(child, bootstrap or _bootstrap(graph), exit_process=False)
        )
    )
    thread.start()
    replies = [parent.recv()]  # build ack
    for request in requests:
        parent.send(request)
        if request is not None:
            try:
                replies.append(parent.recv())
            except EOFError:
                replies.append(None)
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    parent.close()
    return status[0], replies


def test_serve_loop_in_process(graph):
    status, replies = _serve_on_thread(graph, [
        {"op": "clock", "args": {}},
        {"op": "no_such_op", "args": {}},
        None,  # orderly-exit sentinel
    ])
    assert status == 0
    ack, clock_reply, bad_reply = replies
    assert ack["ok"] and ack["clock"] > 0.0  # engine construction charged
    assert clock_reply["ok"] and clock_reply["clock"] == ack["clock"]
    assert not bad_reply["ok"]
    with pytest.raises(ExecutionError, match="unknown shard command"):
        raise pickle.loads(bad_reply["error"])


def test_serve_loop_crash_returns_status(graph):
    """An injected crash escapes the loop with no reply and the crash
    status (the subprocess path calls os._exit with the same value)."""
    plan = FaultPlan(
        name="die", specs=(FaultSpec(kind="worker_crash", at="*"),)
    )
    status, replies = _serve_on_thread(graph, [
        {"op": "install_fault_plan", "args": {"plan": plan.to_dict()}},
        {"op": "new_table", "args": {"kind": "vertex", "name": "t"}},
        {"op": "seed_vertices", "args": {"table": 0, "label": None}},
    ])
    assert status == CRASH_EXIT_CODE
    # install + new_table replied; the crashing op never did.
    assert replies[1]["ok"] and replies[2]["ok"]
    assert replies[3] is None
