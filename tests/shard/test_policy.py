"""Unit tests for the level-0 frontier partitioning policies."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.graph import generators
from repro.shard.policy import (
    EDGE_UNITS,
    SHARD_POLICIES,
    VERTEX_UNITS,
    _unit_weights,
    assign_degree,
    assign_static,
    assign_stealing,
    assign_units,
)


@pytest.fixture(scope="module")
def skewed_graph():
    """A hub-heavy graph so degree balance differs from count balance."""
    return generators.kronecker(5, 8, seed=3)


@pytest.mark.parametrize("policy", SHARD_POLICIES)
@pytest.mark.parametrize("units", (VERTEX_UNITS, EDGE_UNITS))
@pytest.mark.parametrize("num_shards", (1, 2, 3, 4))
def test_assignment_is_a_partition(skewed_graph, policy, units, num_shards):
    assignment = assign_units(skewed_graph, num_shards, units, policy)
    n = (skewed_graph.num_vertices if units == VERTEX_UNITS
         else skewed_graph.num_edges)
    assert assignment.shape == (n,)
    assert assignment.dtype == np.int64
    assert assignment.min() >= 0
    assert assignment.max() < num_shards
    if num_shards > 1 and n >= num_shards:
        # Every shard owns something on a graph bigger than the fleet.
        assert len(np.unique(assignment)) == num_shards


@pytest.mark.parametrize("policy", SHARD_POLICIES)
def test_assignment_is_deterministic(skewed_graph, policy):
    a = assign_units(skewed_graph, 4, VERTEX_UNITS, policy)
    b = assign_units(skewed_graph, 4, VERTEX_UNITS, policy)
    np.testing.assert_array_equal(a, b)


def test_single_shard_owns_everything(skewed_graph):
    for policy in SHARD_POLICIES:
        assignment = assign_units(skewed_graph, 1, EDGE_UNITS, policy)
        assert not assignment.any()


def test_static_ranges_are_contiguous(skewed_graph):
    assignment = assign_static(skewed_graph, 3, VERTEX_UNITS)
    # Shard ids are non-decreasing over unit ids: contiguous ranges.
    assert (np.diff(assignment) >= 0).all()


def test_degree_balances_weight_better_than_static(skewed_graph):
    weights = _unit_weights(skewed_graph, VERTEX_UNITS)

    def imbalance(assignment):
        loads = np.bincount(assignment, weights=weights, minlength=4)
        return loads.max() / loads.mean()

    static = assign_static(skewed_graph, 4, VERTEX_UNITS)
    degree = assign_degree(skewed_graph, 4, VERTEX_UNITS)
    assert imbalance(degree) <= imbalance(static)


def test_stealing_respects_chunk_contiguity(skewed_graph):
    from repro.shard.policy import STEAL_CHUNKS_PER_SHARD

    assignment = assign_stealing(skewed_graph, 4, EDGE_UNITS)
    # Work stealing claims contiguous chunks: the number of shard-id
    # switches is bounded by the chunk count, not the unit count.
    num_chunks = min(len(assignment), 4 * STEAL_CHUNKS_PER_SHARD)
    switches = int((np.diff(assignment) != 0).sum())
    assert switches <= num_chunks - 1
    assert num_chunks < len(assignment)


def test_edge_weights_use_both_endpoints(skewed_graph):
    w = _unit_weights(skewed_graph, EDGE_UNITS)
    degrees = skewed_graph.degrees
    e0_src = int(skewed_graph.edge_src[0])
    e0_dst = int(skewed_graph.edge_dst[0])
    assert w[0] == 1 + degrees[e0_src] + degrees[e0_dst]


def test_invalid_inputs_raise(skewed_graph):
    with pytest.raises(ExecutionError):
        assign_units(skewed_graph, 2, VERTEX_UNITS, "round-robin")
    with pytest.raises(ExecutionError):
        assign_units(skewed_graph, 0, VERTEX_UNITS, "static")
    with pytest.raises(ExecutionError):
        assign_units(skewed_graph, 2, "faces", "static")
