"""Direct unit tests for :mod:`repro.bench.crossover`.

``device_size_sweep`` was previously only smoke-tested end to end; these
tests pin the cell semantics (numeric time vs. crash class name), the
``min_ok`` boundary bookkeeping, and the shape-check wording the figure
reports rely on.
"""

import pytest

from repro.bench.crossover import device_size_sweep
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


@pytest.fixture(scope="module")
def sweep():
    return device_size_sweep(dataset="EA", k=3, sizes_mib=(1, 4))


class TestCellSemantics:
    def test_row_schema(self, sweep):
        assert [row["device_MiB"] for row in sweep.rows] == [1, 4]
        for row in sweep.rows:
            assert set(row) == {"device_MiB", "GAMMA", "Pangolin-GPU", "GSI"}

    def test_cells_are_times_or_crash_class_names(self, sweep):
        """Every cell is either a parseable millisecond figure or the name
        of the GammaError subclass that killed the attempt."""
        from repro import errors

        for row in sweep.rows:
            for system in ("GAMMA", "Pangolin-GPU", "GSI"):
                cell = row[system]
                try:
                    assert float(cell) >= 0
                except ValueError:
                    crash = getattr(errors, cell)
                    assert issubclass(crash, errors.GammaError)

    def test_gamma_flat_across_sizes(self, sweep):
        """GAMMA's large structures are host-resident: it completes at
        every swept size, including the smallest."""
        for row in sweep.rows:
            float(row["GAMMA"])  # parses -> did not crash

    def test_incore_crashes_are_memory_faults(self, sweep):
        """When an in-core system does crash at the small end, it must be
        with a modelled memory fault, not an arbitrary error."""
        crashes = [row[system]
                   for row in sweep.rows
                   for system in ("Pangolin-GPU", "GSI")
                   if not row[system].replace(".", "").isdigit()]
        assert all(cell.endswith("Memory") for cell in crashes)


class TestBoundaryCheck:
    def test_check_present_and_named(self, sweep):
        assert len(sweep.checks) == 1
        assert "Crossover.gamma-needs-least" in sweep.checks[0]

    def test_check_passes_on_default_workload(self, sweep):
        assert sweep.checks[0].startswith("[OK")

    def test_report_identity(self, sweep):
        assert sweep.figure == "Crossover"
        assert "kCL-3" in sweep.title and "EA" in sweep.title
