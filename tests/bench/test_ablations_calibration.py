"""Smoke tests for the ablation and calibration drivers (small configs)."""

import pytest

from repro.bench.ablations import (
    ablation_block_size,
    ablation_compaction,
    ablation_p_size,
)
from repro.bench.calibration import (
    FACTORS,
    SENSITIVE_CONSTANTS,
    _ordering_holds,
    sensitivity_analysis,
)
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


class TestAblations:
    def test_block_size_rows(self):
        report = ablation_block_size("EA", block_sizes=(1 << 12, 1 << 13))
        assert len(report.rows) == 2

    def test_compaction_shape(self):
        report = ablation_compaction("CP")
        assert all(c.startswith("[OK") for c in report.checks)

    def test_p_size_correctness_asserted(self):
        report = ablation_p_size(n=100_000, p_sizes=(1 << 10, 1 << 12))
        assert len(report.rows) == 2


class TestCalibration:
    def test_constants_exist_on_cost_model(self):
        from dataclasses import fields
        from repro.gpusim.spec import CostModel

        names = {f.name for f in fields(CostModel)}
        assert set(SENSITIVE_CONSTANTS) <= names

    def test_ordering_helper(self):
        assert _ordering_holds({"GAMMA": 1.0, "Pangolin-GPU": 2.0,
                                "Peregrine": 3.0})
        assert not _ordering_holds({"GAMMA": 5.0, "Pangolin-GPU": 2.0,
                                    "Peregrine": 3.0})
        # a crashed rival doesn't invalidate the ordering
        assert _ordering_holds({"GAMMA": 1.0, "Pangolin-GPU": None,
                                "Peregrine": 3.0})
        # a crashed GAMMA does
        assert not _ordering_holds({"GAMMA": None, "Pangolin-GPU": 1.0,
                                    "Peregrine": 1.0})

    def test_factors_are_symmetric(self):
        assert FACTORS == (0.5, 2.0)

    def test_full_analysis_holds(self):
        # k=4 is the bench's workload: heavy enough that GAMMA's ordering
        # is structural, not an artifact of calibration (k=3 on this
        # stand-in is prep-dominated, where in-core legitimately wins —
        # the paper's own small-workload caveat).
        report = sensitivity_analysis(dataset="CP", k=4)
        assert all(c.startswith("[OK") for c in report.checks)
        # baseline + 2 per constant
        assert len(report.rows) == 1 + 2 * len(SENSITIVE_CONSTANTS)
