"""Smoke tests for the lighter figure drivers (the heavy ones run under
``pytest benchmarks/``)."""

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    fig05_temporal_locality,
    fig12_kcl,
    fig15_density,
    fig16_warps,
    fig18_kcl_optimizations,
    fig19_multimerge,
    table2_datasets,
    table3_cpu_sort,
)
from repro.bench.workloads import KCL_DATASETS
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


class TestFigureRegistry:
    def test_every_paper_figure_indexed(self):
        assert set(ALL_FIGURES) == {
            "fig05", "fig10", "fig11", "fig12", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "fig20", "table2", "table3",
        }


class TestLightFigures:
    def test_fig05(self):
        report = fig05_temporal_locality(dataset="ER", k=3)
        assert report.figure == "Fig. 5"
        assert report.rows

    def test_fig15_small(self):
        report = fig15_density(scale=8, factors=(2, 4, 8))
        assert len(report.rows) == 3
        assert all(c.startswith("[OK") for c in report.checks)

    def test_fig16_small(self):
        report = fig16_warps(dataset="ER", warps=(1, 4, 16))
        assert len(report.rows) == 3
        times = [float(r["time_ms"]) for r in report.rows]
        assert times[0] > times[-1]  # more warps, less time

    def test_fig19_small(self):
        report = fig19_multimerge(tasks=((0.2, 4), (0.2, 8)))
        assert len(report.rows) == 2
        assert all(c.startswith("[OK") for c in report.checks)

    def test_table2(self):
        report = table2_datasets()
        assert len(report.rows) == 10
        assert "cit-Patent" in report.table

    def test_table3_small(self):
        report = table3_cpu_sort(n=200_000)
        assert all(c.startswith("[OK") for c in report.checks)

    def test_render_contains_checks(self):
        report = table2_datasets()
        text = report.render()
        assert "Table II" in text
        assert "[OK" in text


class TestComparisonFigures:
    """The cheaper cross-system drivers (the rest run under
    ``pytest benchmarks/``)."""

    def test_fig12_kcl_grid(self):
        report = fig12_kcl()
        assert report.figure == "Fig. 12"
        assert len(report.results) == 4 * len(KCL_DATASETS)
        # Every (system, dataset) cell lands in the rendered grid.
        for system in ("GAMMA", "Pangolin-GPU", "Pangolin-ST", "Peregrine"):
            assert system in report.table
        # The crash check is informational ([?]); nothing may diverge.
        assert "[DIVERGES" not in report.render()

    def test_fig18_ablation_ordering(self):
        report = fig18_kcl_optimizations()
        assert report.figure == "Fig. 18"
        # 2 datasets x 3 ablation variants.
        assert len(report.results) == 6
        assert all(c.startswith("[OK") for c in report.checks)
        by = {}
        for r in report.results:
            by.setdefault(r.dataset, {})[r.system] = r.simulated_seconds
        for cell in by.values():
            assert cell["dynamic+pre-merge"] <= cell["dynamic-alloc"]
            assert cell["dynamic-alloc"] < cell["naive"]

    def test_render_includes_grid_and_checks(self):
        report = fig12_kcl()
        text = report.render()
        assert text.startswith("== Fig. 12")
        assert "GAMMA" in text
        for check in report.checks:
            assert check in text


class TestReportsArchive:
    def test_archived_reports_have_no_divergences(self):
        """After a benchmark run, every archived report must be all-[OK]
        (the conftest enforces it at bench time; this guards stale files)."""
        import pathlib

        reports = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "reports"
        if not reports.exists():
            pytest.skip("no benchmark run archived yet")
        for path in reports.glob("*.txt"):
            text = path.read_text()
            assert "[DIVERGES" not in text, path.name
