"""Tests for result persistence/diffing and the crossover sweep."""

import pytest

from repro.bench.crossover import device_size_sweep
from repro.bench.figures import FigureReport, table2_datasets
from repro.bench.persistence import (
    diff_reports,
    load_report_dict,
    report_to_dict,
    save_report,
)
from repro.bench.runner import RunResult
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


def make_report(time_a=1.0, crashed_b=False, check_ok=True):
    status = "[OK      ]" if check_ok else "[DIVERGES]"
    return FigureReport(
        figure="Fig. X",
        title="test",
        table="",
        checks=[f"{status} X.claim: paper: p; measured: m"],
        results=[
            RunResult("A", "D1", "t", simulated_seconds=time_a),
            RunResult("B", "D1", "t", crashed=crashed_b,
                      simulated_seconds=None if crashed_b else 2.0),
        ],
    )


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        report = table2_datasets()
        path = tmp_path / "table2.json"
        save_report(report, path)
        loaded = load_report_dict(path)
        assert loaded["figure"] == "Table II"
        assert len(loaded["rows"]) == 10

    def test_diff_no_changes(self):
        old = report_to_dict(make_report())
        new = report_to_dict(make_report())
        assert diff_reports(old, new) == []

    def test_diff_flags_check_regression(self):
        old = report_to_dict(make_report(check_ok=True))
        new = report_to_dict(make_report(check_ok=False))
        problems = diff_reports(old, new)
        assert any("check regressed" in p for p in problems)

    def test_diff_flags_new_crash(self):
        old = report_to_dict(make_report(crashed_b=False))
        new = report_to_dict(make_report(crashed_b=True))
        problems = diff_reports(old, new)
        assert any("crash status changed" in p for p in problems)

    def test_diff_flags_time_drift(self):
        old = report_to_dict(make_report(time_a=1.0))
        new = report_to_dict(make_report(time_a=2.0))
        problems = diff_reports(old, new, tolerance=0.5)
        assert any("time drifted" in p for p in problems)

    def test_diff_tolerates_small_drift(self):
        old = report_to_dict(make_report(time_a=1.0))
        new = report_to_dict(make_report(time_a=1.1))
        assert diff_reports(old, new, tolerance=0.25) == []

    def test_diff_ignores_unmatched_cells(self):
        old = report_to_dict(make_report())
        new = report_to_dict(make_report())
        new["results"].append(
            {"system": "C", "dataset": "D9", "task": "t",
             "simulated_seconds": 1.0, "peak_memory_bytes": 0,
             "crashed": False, "crash_reason": ""}
        )
        assert diff_reports(old, new) == []


class TestCrossover:
    def test_small_sweep(self):
        report = device_size_sweep(dataset="EA", k=3, sizes_mib=(1, 4))
        assert len(report.rows) == 2
        # GAMMA column present and numeric at the largest size
        last = report.rows[-1]
        float(last["GAMMA"])  # parses

    def test_gamma_needs_no_more_than_incore(self):
        report = device_size_sweep(dataset="CP", k=3, sizes_mib=(1, 4, 16))
        assert all(c.startswith("[OK") for c in report.checks)
