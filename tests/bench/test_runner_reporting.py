"""Tests for the benchmark harness plumbing."""

import pytest

from repro.bench import (
    SYSTEMS,
    RunResult,
    Task,
    crash_summary,
    format_table,
    fpm_support,
    geometric_speedup,
    grid_table,
    kcl_task,
    queries_for_dataset,
    run_gamma_variant,
    run_task,
    shape_check,
    sm_task,
)
from repro.core import GammaConfig
from repro.graph import datasets


@pytest.fixture(autouse=True)
def clear_dataset_cache():
    yield
    datasets.clear_cache()


class TestRunner:
    def test_systems_registered(self):
        assert {"GAMMA", "Pangolin-GPU", "Pangolin-ST", "Peregrine",
                "GSI", "GraphMiner"} <= set(SYSTEMS)

    def test_run_task_success(self):
        result = run_task("GAMMA", "ER", sm_task(1))
        assert not result.crashed
        assert result.simulated_seconds > 0
        assert result.peak_memory_bytes > 0
        assert result.display_time.endswith("ms")

    def test_run_task_unknown_system(self):
        with pytest.raises(KeyError):
            run_task("HAL9000", "ER", sm_task(1))

    def test_crash_captured_not_raised(self):
        from repro.gpusim import make_platform
        from repro.baselines import PangolinGPU

        def cramped_pangolin(graph):
            return PangolinGPU(
                graph, platform=make_platform(device_memory_bytes=1 << 12)
            )

        result = run_task(
            "Pangolin-GPU", "CP", kcl_task(3), engine_factory=cramped_pangolin
        )
        assert result.crashed
        assert result.crash_reason == "DeviceOutOfMemory"
        assert result.display_time == "CRASH"

    def test_gamma_variant(self):
        result = run_gamma_variant(
            "ER", sm_task(1), GammaConfig(pre_merge=False), "GAMMA-nomerge"
        )
        assert result.system == "GAMMA-nomerge"
        assert not result.crashed


class TestWorkloads:
    def test_fpm_support_scales(self):
        assert fpm_support(200) == 2
        assert fpm_support(200_000) == 1000

    def test_queries_for_dataset(self):
        assert queries_for_dataset("CP") == (1, 2, 3)
        assert queries_for_dataset("UK") == (1, 3)

    def test_task_names(self):
        assert sm_task(2).name == "SM:q2"
        assert kcl_task(5).name == "kCL:5"


class TestReporting:
    def test_format_table(self):
        out = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[2].split() == ["1", "x"]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_grid_table_pivots(self):
        results = [
            RunResult("S1", "D1", "t", simulated_seconds=1e-3),
            RunResult("S2", "D1", "t", crashed=True),
        ]
        out = grid_table(results)
        assert "1.000" in out
        assert "CRASH" in out

    def test_grid_table_memory_view(self):
        results = [RunResult("S", "D", "t", peak_memory_bytes=2 << 20)]
        assert "2.00" in grid_table(results, value="memory")

    def test_geometric_speedup(self):
        results = [
            RunResult("GAMMA", "D1", "t", simulated_seconds=1.0),
            RunResult("B", "D1", "t", simulated_seconds=2.0),
            RunResult("GAMMA", "D2", "t", simulated_seconds=1.0),
            RunResult("B", "D2", "t", simulated_seconds=8.0),
        ]
        assert geometric_speedup(results, "B") == pytest.approx(4.0)

    def test_geometric_speedup_skips_crashes(self):
        results = [
            RunResult("GAMMA", "D1", "t", simulated_seconds=1.0),
            RunResult("B", "D1", "t", crashed=True),
        ]
        assert geometric_speedup(results, "B") is None

    def test_shape_check_statuses(self):
        assert shape_check("x", "p", "m", True).startswith("[OK")
        assert shape_check("x", "p", "m", False).startswith("[DIVERGES")
        assert shape_check("x", "p", "m", None).startswith("[?")

    def test_crash_summary(self):
        results = [
            RunResult("A", "D", "t"),
            RunResult("B", "D", "t", crashed=True, crash_reason="DeviceOutOfMemory"),
        ]
        assert "B on D" in crash_summary(results)
        assert crash_summary([results[0]]) == "no crashes"
