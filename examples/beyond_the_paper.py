"""Beyond the paper: the extension features of this reproduction.

Four capabilities GAMMA's paper hints at but does not build, exercised on
one workload each:

1. **symmetry breaking** — automorphism-derived ordering restrictions make
   subgraph matching enumerate each subgraph once (smaller tables, same
   answers);
2. **MNI support** — the anti-monotone frequent-subgraph-mining metric,
   next to the paper's instance-frequency support;
3. **graph reordering** — the locality optimization of the related work
   ([25]/[45]): hubs packed into hot pages help the access-heat planner;
4. **disk spilling** — a storage tier past host memory: workloads that
   host-OOM every system in Fig. 14 complete.

Run:  python examples/beyond_the_paper.py   (~2 minutes)
"""

from repro.algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
)
from repro.core import DISK_IO, Gamma, GammaConfig
from repro.errors import GammaError
from repro.graph import (
    cycle,
    datasets,
    default_catalog,
    reorder,
)


def demo_symmetry_breaking(graph):
    print("1. symmetry breaking (4-cycle query on cit-Patent stand-in)")
    query = cycle(4)
    rows = []
    for sb in (False, True):
        with Gamma(graph) as engine:
            result = match_pattern(engine, query, symmetry_breaking=sb)
            rows.append((sb, result, engine.peak_host_bytes))
    for sb, result, peak in rows:
        print(f"   symmetry_breaking={str(sb):5s}: "
              f"{result.embeddings:8d} rows enumerated, "
              f"{result.unique_subgraphs:7d} unique subgraphs, "
              f"host peak {peak / (1 << 20):6.2f} MiB")
    print(f"   -> same answers, {query.automorphism_count()}x fewer rows\n")


def demo_mni(graph):
    print("2. MNI vs instance support (2-edge patterns, com-lj stand-in)")
    catalog = default_catalog(graph.num_labels)
    supports = {}
    for metric in ("instances", "mni"):
        with Gamma(graph) as engine:
            fpm = frequent_pattern_mining(engine, 2, 1, support_metric=metric)
            supports[metric] = fpm.patterns
    print(f"   {'pattern':22s} {'instances':>10s} {'mni':>8s}")
    shown = 0
    for name, inst in catalog.describe(supports["instances"]):
        code = next(c for c, s in supports["instances"].items()
                    if catalog.name_of(c) == name and s == inst)
        print(f"   {name:22s} {inst:10d} {supports['mni'][code]:8d}")
        shown += 1
        if shown == 5:
            break
    print("   -> MNI <= instances always; hubs inflate instance counts\n")


def demo_reordering(base):
    print("3. graph reordering (triangles on soc-Live*5 stand-in)")
    for order, graph in (("original", base), ("degree", reorder(base, "degree"))):
        with Gamma(graph) as engine:
            result = count_kcliques(engine, 3)
            faults = engine.platform.counters.get("page_faults")
            print(f"   {order:9s}: {result.simulated_seconds * 1e3:8.2f} ms, "
                  f"{faults} page faults, {result.cliques} triangles")
    print("   -> same counts; hub-packed pages change the fault profile\n")


def demo_spill():
    print("4. disk spilling (FPM on com-orkut stand-in, beyond host memory)")
    graph = datasets.load("CO")
    min_support = max(2, graph.num_edges // 200)
    try:
        with Gamma(graph) as engine:
            frequent_pattern_mining(engine, 2, min_support)
        print("   plain GAMMA: completed (unexpected at this scale)")
    except GammaError as exc:
        print(f"   plain GAMMA: {type(exc).__name__} — the paper's systems "
              "all stop here")
    config = GammaConfig(spill_to_disk=True, spill_budget_bytes=120 << 20)
    with Gamma(graph, config) as engine:
        result = frequent_pattern_mining(engine, 2, min_support)
        disk = engine.platform.clock.time_in(DISK_IO)
        print(f"   GAMMA+spill: {len(result.patterns)} frequent patterns, "
              f"{engine.simulated_seconds * 1e3:.0f} ms simulated "
              f"({disk * 1e3:.0f} ms of it on disk I/O)")


def main():
    cl = datasets.load("CL")
    demo_symmetry_breaking(datasets.load("CP"))
    demo_mni(cl)
    demo_reordering(datasets.load("SL*5"))
    demo_spill()


if __name__ == "__main__":
    main()
