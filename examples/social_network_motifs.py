"""Social-network motif mining: FPM on a labeled community graph.

The paper's second motivating domain (§I): which small interaction
patterns are frequent in a social network?  We build an R-MAT graph with
skewed community labels, mine all frequent patterns up to 2 edges, and
compare GAMMA's simulated runtime with the Peregrine CPU baseline — the
comparison Fig. 14 makes at full scale.

Run:  python examples/social_network_motifs.py
"""

from repro.algorithms import frequent_pattern_mining
from repro.baselines import Peregrine
from repro.core import Gamma
from repro.graph import default_catalog, kronecker


def main():
    # A heavy-tailed "social network": 4k users, ~30k ties, 5 communities.
    graph = kronecker(12, 8, seed=42, labels=5, name="social")
    print(f"social graph: {graph.num_vertices} users, {graph.num_edges} ties, "
          f"max degree {graph.max_degree}")

    min_support = max(2, graph.num_edges // 100)
    print(f"mining patterns of up to 2 ties with support >= {min_support}\n")

    results = {}
    for name, engine_cls in (("GAMMA", Gamma), ("Peregrine", Peregrine)):
        with engine_cls(graph) as engine:
            fpm = frequent_pattern_mining(
                engine, iterations=2, min_support=min_support
            )
            results[name] = (fpm, engine.simulated_seconds)

    gamma_fpm, gamma_time = results["GAMMA"]
    __, peregrine_time = results["Peregrine"]

    print(f"frequent patterns found: {len(gamma_fpm.patterns)} "
          f"(per level: {gamma_fpm.frequent_per_level})")
    catalog = default_catalog(graph.num_labels)
    print("most frequent patterns (shape[community labels] -> instances):")
    for name, support in catalog.describe(gamma_fpm.patterns)[:8]:
        print(f"  {name:22s} {support:7d}")

    print(f"\nsimulated runtime:  GAMMA {gamma_time * 1e3:8.2f} ms   "
          f"Peregrine {peregrine_time * 1e3:8.2f} ms   "
          f"(speedup {peregrine_time / gamma_time:.2f}x)")
    agree = results["Peregrine"][0].patterns == gamma_fpm.patterns
    print(f"both systems agree on every pattern: {agree}")


if __name__ == "__main__":
    main()
