"""Out-of-core scaling: where in-core GPM dies, GAMMA keeps going.

The paper's headline: GPM explodes along two axes — embedding size (§I:
length-4 embeddings over cit-Patent produce 13.5 *billion* intermediate
results) and graph size — and in-core GPU frameworks crash as soon as
either outgrows device memory.  GAMMA keeps the graph and the embedding
table in host memory and survives both axes.

This example sweeps both: k-clique size on the com-lj stand-in, and graph
scale via the paper's upscaling technique (ref [33]).  The simulated device
has 16 MiB of memory (the paper's 16 GB scaled 1000x, like the datasets).

Run:  python examples/out_of_core_scaling.py   (~1 minute)
"""

from repro.algorithms import count_kcliques
from repro.baselines import GSI, PangolinGPU
from repro.core import Gamma
from repro.errors import GammaError
from repro.graph import datasets, upscale


def run(engine_cls, graph, k):
    try:
        with engine_cls(graph) as engine:
            result = count_kcliques(engine, k)
            return f"{engine.simulated_seconds * 1e3:9.2f} ms", result.cliques
    except GammaError as exc:
        return f"{type(exc).__name__:>12s}", None


def sweep(rows, make_graph, make_k, axis_name):
    header = (f"{axis_name:>8s} {'edges':>8s} {'GAMMA':>13s} "
              f"{'Pangolin-GPU':>13s} {'GSI':>13s}  cliques")
    print(header)
    print("-" * len(header))
    for value in rows:
        graph = make_graph(value)
        k = make_k(value)
        gamma_cell, cliques = run(Gamma, graph, k)
        pangolin_cell, __ = run(PangolinGPU, graph, k)
        gsi_cell, __ = run(GSI, graph, k)
        print(f"{value:>8} {graph.num_edges:>8} {gamma_cell:>13s} "
              f"{pangolin_cell:>13s} {gsi_cell:>13s}  {cliques}")
    print()


def main():
    base = datasets.load("CL")
    print(f"base graph: com-lj stand-in, {base.num_vertices} vertices, "
          f"{base.num_edges} edges; device memory 16 MiB\n")

    print("axis 1 — embedding size (k-cliques on com-lj):")
    sweep((3, 4, 5), lambda __: base, lambda k: k, "k")

    print("axis 2 — graph size (triangles on upscaled com-lj):")
    sweep(
        (1, 2, 4, 8),
        lambda factor: upscale(base, factor, seed=factor),
        lambda __: 3,
        "scale",
    )

    print("GAMMA completes every cell; the in-core systems die once the\n"
          "graph or the intermediate results no longer fit device memory —\n"
          "the scalability gap of the paper's Figs. 11/12/14.")


if __name__ == "__main__":
    main()
