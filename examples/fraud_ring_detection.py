"""Fraud-ring detection: labeled cycle queries on a transaction graph.

A classic GPM motivation (paper §I cites financial markets): money mules
route funds in short cycles through intermediary accounts.  We synthesize a
payments graph with account types — 0=retail, 1=merchant, 2=mule — plant a
handful of mule rings, and use GAMMA's subgraph matching to find every
mule-only cycle of length 3 and 4.

Run:  python examples/fraud_ring_detection.py
"""

import numpy as np

from repro.algorithms import match_pattern
from repro.core import Gamma
from repro.graph import Pattern, from_edges


def build_transaction_graph(seed: int = 7):
    """Background payment traffic + 3 planted mule rings."""
    rng = np.random.default_rng(seed)
    n_accounts = 3000
    n_payments = 12000
    src = rng.integers(0, n_accounts, n_payments)
    dst = rng.integers(0, n_accounts, n_payments)

    labels = rng.choice([0, 1, 2], size=n_accounts, p=[0.80, 0.17, 0.03])

    # Plant rings among mule accounts: a triangle, a 4-cycle, a 5-cycle.
    mules = np.flatnonzero(labels == 2)
    planted = []
    extra_src, extra_dst = [], []
    offset = 0
    for ring_size in (3, 4, 5):
        ring = mules[offset: offset + ring_size]
        offset += ring_size
        for i in range(ring_size):
            extra_src.append(ring[i])
            extra_dst.append(ring[(i + 1) % ring_size])
        planted.append(ring.tolist())

    graph = from_edges(
        np.concatenate([src, extra_src]),
        np.concatenate([dst, extra_dst]),
        num_vertices=n_accounts,
        labels=labels,
        name="payments",
    )
    return graph, planted


def ring_query(size: int) -> Pattern:
    """A cycle of ``size`` mule accounts (label 2)."""
    edges = [(i, (i + 1) % size) for i in range(size)]
    return Pattern(edges, labels=[2] * size, name=f"mule-ring-{size}")


def main():
    graph, planted = build_transaction_graph()
    print(f"payments graph: {graph.num_vertices} accounts, "
          f"{graph.num_edges} relationships")
    print(f"planted rings: {planted}")

    for size in (3, 4):
        query = ring_query(size)
        with Gamma(graph) as engine:
            result, table = match_pattern(engine, query, keep_table=True)
            rings = {tuple(sorted(row)) for row in table.materialize().tolist()}
            table.release()
        print(f"\n{query.name}: {len(rings)} distinct rings "
              f"({result.embeddings} embeddings, "
              f"{result.simulated_seconds * 1e3:.2f} ms simulated)")
        for ring in sorted(rings)[:5]:
            marker = "PLANTED" if list(ring) in [sorted(p) for p in planted] else "organic"
            print(f"  accounts {ring}  [{marker}]")


if __name__ == "__main__":
    main()
