"""Quickstart: mine patterns on a small graph with GAMMA.

Builds a toy labeled graph, then uses the framework's public API to
(1) count triangles, (2) run a labeled subgraph matching query and
(3) mine frequent 2-edge patterns — the three workload families of the
paper.  Each result is cross-checked against the exact reference oracle.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.algorithms import (
    frequent_pattern_mining,
    match_pattern,
    triangle_count,
)
from repro.core import Gamma
from repro.graph import Pattern, count_isomorphisms, from_edge_list


def build_graph():
    """A 10-vertex collaboration graph; labels 0=student, 1=faculty."""
    edges = [
        (0, 1), (0, 2), (1, 2),          # a faculty triangle
        (2, 3), (3, 4), (2, 4),          # a mixed triangle
        (4, 5), (5, 6), (6, 7), (7, 4),  # a 4-cycle
        (7, 8), (8, 9),
    ]
    labels = np.array([1, 1, 1, 0, 0, 0, 0, 1, 0, 0])
    return from_edge_list(edges, labels=labels, name="quickstart")


def main():
    graph = build_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 1. Triangle counting -------------------------------------------------
    with Gamma(graph) as engine:
        tri = triangle_count(engine)
    print(f"\ntriangles: {tri.triangles} "
          f"(simulated {tri.simulated_seconds * 1e6:.1f} us on the GPU model)")

    # 2. Labeled subgraph matching -----------------------------------------
    # Find faculty-faculty-student wedges: 1 - 1 - 0.
    query = Pattern([(0, 1), (1, 2)], labels=[1, 1, 0], name="wedge-110")
    with Gamma(graph) as engine:
        sm = match_pattern(engine, query)
    oracle = count_isomorphisms(graph, query)
    print(f"\nquery {query.name}: {sm.embeddings} embeddings "
          f"(oracle agrees: {sm.embeddings == oracle})")

    # 3. Frequent pattern mining -------------------------------------------
    with Gamma(graph) as engine:
        fpm = frequent_pattern_mining(engine, iterations=2, min_support=2)
    print(f"\nFPM (2 edges, support >= 2): "
          f"{len(fpm.patterns)} frequent patterns")
    for code, support in sorted(fpm.patterns.items(), key=lambda kv: -kv[1]):
        print(f"  pattern {code:+021d}  support {support}")


if __name__ == "__main__":
    main()
